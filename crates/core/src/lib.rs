//! The paper's transaction engines: Vista and its three restructurings.
//!
//! This crate is the primary contribution of the reproduction: a
//! Vista-style recoverable-memory transaction library (`begin` /
//! `set_range` / `write` / `commit` / `abort` / `recover`) implemented four
//! ways, exactly as compared in *Data Replication Strategies for Fault
//! Tolerance and Availability on Commodity Clusters* (Amza, Cox,
//! Zwaenepoel — DSN 2000):
//!
//! | engine | paper | undo representation |
//! |---|---|---|
//! | [`VistaEngine`]       | Version 0 | heap-allocated record list |
//! | [`MirrorEngine`] ([`MirrorStrategy::Copy`]) | Version 1 | database mirror, copied at commit |
//! | [`MirrorEngine`] ([`MirrorStrategy::Diff`]) | Version 2 | database mirror, diffed at commit |
//! | [`ImprovedLogEngine`] | Version 3 | contiguous inline log |
//!
//! plus the redo ring ([`RedoWriter`] / [`RedoReader`]) that powers the
//! active-backup scheme of §6, the [`Machine`] that charges every memory
//! access to the virtual-time cost model, and the [`ShadowDb`] oracle the
//! test suites verify recovery against.
//!
//! # Examples
//!
//! A complete standalone transaction with crash recovery:
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use dsnrep_core::{Engine, EngineConfig, ImprovedLogEngine, Machine};
//! use dsnrep_rio::Arena;
//! use dsnrep_simcore::CostModel;
//!
//! let config = EngineConfig::for_db(64 * 1024);
//! let arena = Rc::new(RefCell::new(Arena::new(ImprovedLogEngine::arena_len(&config))));
//! let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
//! let mut engine = ImprovedLogEngine::format(&mut m, &config);
//! let db = engine.db_region().start();
//!
//! // A committed transaction...
//! engine.begin(&mut m)?;
//! engine.set_range(&mut m, db, 8)?;
//! engine.write(&mut m, db, &1u64.to_le_bytes())?;
//! engine.commit(&mut m)?;
//!
//! // ...then a crash in the middle of a second one.
//! engine.begin(&mut m)?;
//! engine.set_range(&mut m, db, 8)?;
//! engine.write(&mut m, db, &2u64.to_le_bytes())?;
//! m.crash();
//!
//! // Reboot: re-attach and recover. The interrupted transaction is gone.
//! let mut engine = ImprovedLogEngine::attach(&mut m).expect("formatted arena");
//! let report = engine.recover(&mut m);
//! assert!(report.rolled_back);
//! assert_eq!(arena.borrow().read_u64(db), 1);
//! # Ok::<(), dsnrep_core::TxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod config;
mod engine;
mod error;
mod machine;
mod mirror;
mod ranges;
mod redo;
mod shadow;
mod tx;
mod v0;
mod v3;

pub use audit::{audit, AuditReport, AuditViolation};
pub use config::EngineConfig;
pub use engine::{run_transaction, Engine, RecoveryReport, VersionTag};
pub use error::TxError;
pub use machine::{Durability, Machine, MachineStats, MetaMem, StoreBatch};
pub use mirror::{MirrorEngine, MirrorStrategy};
pub use redo::{Applied, RedoReader, RedoWriter};
pub use shadow::ShadowDb;
pub use tx::Tx;
pub use v0::VistaEngine;
pub use v3::ImprovedLogEngine;

use std::cell::RefCell;
use std::rc::Rc;

use dsnrep_rio::Arena;

/// Builds an engine of the given version over `m`'s arena, formatting it.
///
/// The active-backup scheme uses [`ImprovedLogEngine`] locally (the paper
/// uses "the best local scheme, i.e., Version 3" — §6.1), so it is not a
/// separate variant here.
///
/// # Examples
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use dsnrep_core::{build_engine, EngineConfig, Machine, VersionTag};
/// use dsnrep_rio::Arena;
/// use dsnrep_simcore::CostModel;
///
/// let config = EngineConfig::for_db(1 << 16);
/// let arena = Rc::new(RefCell::new(Arena::new(dsnrep_core::arena_len(
///     VersionTag::MirrorDiff, &config))));
/// let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
/// let engine = build_engine(VersionTag::MirrorDiff, &mut m, &config);
/// assert_eq!(engine.version(), VersionTag::MirrorDiff);
/// ```
pub fn build_engine<T: dsnrep_obs::Tracer + 'static>(
    version: VersionTag,
    m: &mut Machine<T>,
    config: &EngineConfig,
) -> Box<dyn Engine<T>> {
    match version {
        VersionTag::Vista => Box::new(VistaEngine::format(m, config)),
        VersionTag::MirrorCopy => Box::new(MirrorEngine::format(m, config, MirrorStrategy::Copy)),
        VersionTag::MirrorDiff => Box::new(MirrorEngine::format(m, config, MirrorStrategy::Diff)),
        VersionTag::ImprovedLog => Box::new(ImprovedLogEngine::format(m, config)),
    }
}

/// Re-attaches an engine of the given version to a formatted arena (crash
/// recovery / failover path).
///
/// # Panics
///
/// Panics if the arena was not formatted for `version`'s layout.
pub fn attach_engine<T: dsnrep_obs::Tracer + 'static>(
    version: VersionTag,
    m: &mut Machine<T>,
) -> Box<dyn Engine<T>> {
    match version {
        VersionTag::Vista => {
            Box::new(VistaEngine::attach(m).expect("arena formatted for Version 0"))
        }
        VersionTag::MirrorCopy => Box::new(
            MirrorEngine::attach(m, MirrorStrategy::Copy).expect("arena formatted for mirroring"),
        ),
        VersionTag::MirrorDiff => Box::new(
            MirrorEngine::attach(m, MirrorStrategy::Diff).expect("arena formatted for mirroring"),
        ),
        VersionTag::ImprovedLog => {
            Box::new(ImprovedLogEngine::attach(m).expect("arena formatted for Version 3"))
        }
    }
}

/// Arena bytes `version` needs under `config`.
pub fn arena_len(version: VersionTag, config: &EngineConfig) -> u64 {
    match version {
        VersionTag::Vista => VistaEngine::arena_len(config),
        VersionTag::MirrorCopy | VersionTag::MirrorDiff => MirrorEngine::arena_len(config),
        VersionTag::ImprovedLog => ImprovedLogEngine::arena_len(config),
    }
}

/// Creates a shared arena handle of `len` bytes (convenience for wiring a
/// [`Machine`] to `dsnrep-mcsim` ports).
///
/// # Examples
///
/// ```
/// let arena = dsnrep_core::shared_arena(4096);
/// assert_eq!(arena.borrow().len(), 4096);
/// ```
pub fn shared_arena(len: u64) -> Rc<RefCell<Arena>> {
    Rc::new(RefCell::new(Arena::new(len)))
}
