//! The correctness oracle: a shadow copy of the database.
//!
//! A [`ShadowDb`] replays the same logical writes the engine under test
//! receives, but with trivially correct semantics (pending writes apply at
//! commit, vanish at abort). Recovery tests compare the recovered arena
//! against the shadow:
//!
//! * a standalone crash must recover to exactly the shadow's committed
//!   state;
//! * a failover must recover to the committed state or — 1-safe — the state
//!   one commit earlier ([`ShadowDb::prev_bytes`]);
//! * the mirroring versions' torn-tail window is checkable byte-wise via
//!   [`ShadowDb::last_txn_spans`].

use dsnrep_rio::Arena;
use dsnrep_simcore::{Addr, Region};

/// A trivially correct reference database.
///
/// # Examples
///
/// ```
/// use dsnrep_core::ShadowDb;
/// use dsnrep_simcore::{Addr, Region};
///
/// let mut shadow = ShadowDb::new(Region::new(Addr::new(100), 16));
/// shadow.begin();
/// shadow.write(Addr::new(104), &[1, 2]);
/// shadow.abort();
/// assert_eq!(shadow.committed(), &[0u8; 16]);
/// shadow.begin();
/// shadow.write(Addr::new(104), &[1, 2]);
/// shadow.commit();
/// assert_eq!(&shadow.committed()[4..6], &[1, 2]);
/// assert_eq!(shadow.seq(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ShadowDb {
    region: Region,
    committed: Vec<u8>,
    pending: Vec<(u64, Vec<u8>)>,
    /// Ranges declared (`set_range`) by the active transaction.
    pending_ranges: Vec<(u64, u64)>,
    /// Undo for the most recent commit: (offset, old bytes).
    last_undo: Vec<(u64, Vec<u8>)>,
    /// Spans written by the most recent commit.
    last_spans: Vec<(u64, u64)>,
    /// Ranges declared by the most recent commit.
    last_ranges: Vec<(u64, u64)>,
    active: bool,
    seq: u64,
}

impl ShadowDb {
    /// Creates a zero-filled shadow of `region`.
    pub fn new(region: Region) -> Self {
        ShadowDb {
            region,
            committed: vec![0; usize::try_from(region.len()).expect("shadow too large")],
            pending: Vec::new(),
            pending_ranges: Vec::new(),
            last_undo: Vec::new(),
            last_spans: Vec::new(),
            last_ranges: Vec::new(),
            active: false,
            seq: 0,
        }
    }

    /// Seeds the initial (pre-measurement) state, outside any transaction.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is active or the range is out of bounds.
    pub fn load(&mut self, addr: Addr, bytes: &[u8]) {
        assert!(!self.active, "load during a transaction");
        let off = (addr - self.region.start()) as usize;
        self.committed[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Starts a transaction.
    ///
    /// # Panics
    ///
    /// Panics if one is already active.
    pub fn begin(&mut self) {
        assert!(!self.active, "shadow transaction already active");
        self.active = true;
        self.pending.clear();
        self.pending_ranges.clear();
    }

    /// Records an undo range declared (`set_range`) by the active
    /// transaction. A crashed transaction's rollback touches exactly its
    /// declared ranges — on a 1-safe backup possibly with a torn undo
    /// image — so declared ranges, not just written spans, bound where a
    /// failover may observe torn bytes.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or the range is out of bounds.
    pub fn declare(&mut self, addr: Addr, len: u64) {
        assert!(self.active, "shadow declare outside a transaction");
        assert!(
            self.region.contains_range(addr, len),
            "shadow declare out of bounds"
        );
        self.pending_ranges.push((addr - self.region.start(), len));
    }

    /// Records a write of the active transaction.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or the range is out of bounds.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        assert!(self.active, "shadow write outside a transaction");
        assert!(
            self.region.contains_range(addr, bytes.len() as u64),
            "shadow write out of bounds"
        );
        self.pending
            .push((addr - self.region.start(), bytes.to_vec()));
    }

    /// Commits: pending writes become visible.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) {
        assert!(self.active, "shadow commit outside a transaction");
        self.last_undo.clear();
        self.last_spans.clear();
        self.last_ranges.clear();
        self.last_ranges.append(&mut self.pending_ranges);
        for (off, bytes) in self.pending.drain(..) {
            let off_usize = off as usize;
            self.last_undo.push((
                off,
                self.committed[off_usize..off_usize + bytes.len()].to_vec(),
            ));
            self.last_spans.push((off, bytes.len() as u64));
            self.committed[off_usize..off_usize + bytes.len()].copy_from_slice(&bytes);
        }
        self.active = false;
        self.seq += 1;
    }

    /// Aborts: pending writes vanish.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn abort(&mut self) {
        assert!(self.active, "shadow abort outside a transaction");
        self.pending.clear();
        self.pending_ranges.clear();
        self.active = false;
    }

    /// Committed transaction count.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The committed database image.
    pub fn committed(&self) -> &[u8] {
        &self.committed
    }

    /// The committed image as it was *before the most recent commit* —
    /// the state a 1-safe backup is allowed to recover to when the final
    /// commit's publication was still in flight.
    pub fn prev_bytes(&self) -> Vec<u8> {
        let mut prev = self.committed.clone();
        // Undo entries were recorded in commit order; apply in reverse.
        for (off, old) in self.last_undo.iter().rev() {
            let off = *off as usize;
            prev[off..off + old.len()].copy_from_slice(old);
        }
        prev
    }

    /// `(offset, len)` spans written by the most recent commit (for
    /// torn-tail containment checks).
    pub fn last_txn_spans(&self) -> &[(u64, u64)] {
        &self.last_spans
    }

    /// `(offset, len)` undo ranges declared by the most recent commit
    /// (see [`ShadowDb::declare`]). A superset of the written spans
    /// whenever the workload declares whole records but writes fields.
    pub fn last_txn_ranges(&self) -> &[(u64, u64)] {
        &self.last_ranges
    }

    /// Compares the committed image to the arena's database region,
    /// returning the first mismatching offset.
    pub fn first_mismatch(&self, arena: &Arena) -> Option<u64> {
        let actual = arena.read_vec(self.region.start(), self.committed.len());
        self.committed
            .iter()
            .zip(actual.iter())
            .position(|(a, b)| a != b)
            .map(|p| p as u64)
    }

    /// `true` if the arena's database region equals the committed image.
    pub fn matches(&self, arena: &Arena) -> bool {
        self.first_mismatch(arena).is_none()
    }

    /// `true` if the arena equals `image` (helper for
    /// [`ShadowDb::prev_bytes`] comparisons).
    pub fn arena_equals(&self, arena: &Arena, image: &[u8]) -> bool {
        arena.read_vec(self.region.start(), image.len()) == image
    }

    /// The shadowed region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(Addr::new(64), 32)
    }

    #[test]
    fn commit_applies_pending() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.write(Addr::new(64), &[9; 4]);
        assert_eq!(s.committed()[0], 0, "pending is invisible");
        s.commit();
        assert_eq!(&s.committed()[..4], &[9; 4]);
    }

    #[test]
    fn abort_discards_pending() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.write(Addr::new(70), &[1]);
        s.abort();
        assert_eq!(s.committed(), &[0; 32]);
        assert_eq!(s.seq(), 0);
    }

    #[test]
    fn prev_bytes_is_one_commit_back() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.write(Addr::new(64), &[1; 8]);
        s.commit();
        s.begin();
        s.write(Addr::new(68), &[2; 8]);
        s.commit();
        let prev = s.prev_bytes();
        assert_eq!(&prev[..8], &[1; 8]);
        assert_eq!(&prev[8..16], &[0; 8]);
        assert_eq!(&s.committed()[4..12], &[2; 8]);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.write(Addr::new(64), &[1; 8]);
        s.write(Addr::new(68), &[2; 2]);
        s.commit();
        assert_eq!(&s.committed()[..8], &[1, 1, 1, 1, 2, 2, 1, 1]);
    }

    #[test]
    fn last_txn_spans_reported() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.write(Addr::new(66), &[5; 4]);
        s.commit();
        assert_eq!(s.last_txn_spans(), &[(2, 4)]);
    }

    #[test]
    fn declared_ranges_tracked_per_commit() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.declare(Addr::new(64), 16);
        s.write(Addr::new(66), &[5; 4]);
        s.commit();
        assert_eq!(s.last_txn_ranges(), &[(0, 16)]);
        // An abort discards its declarations; the last commit's survive.
        s.begin();
        s.declare(Addr::new(80), 8);
        s.abort();
        assert_eq!(s.last_txn_ranges(), &[(0, 16)]);
        s.begin();
        s.declare(Addr::new(72), 8);
        s.commit();
        assert_eq!(s.last_txn_ranges(), &[(8, 8)]);
    }

    #[test]
    fn matches_against_arena() {
        let mut s = ShadowDb::new(region());
        s.begin();
        s.write(Addr::new(64), &[7]);
        s.commit();
        let mut arena = Arena::new(128);
        arena.write(Addr::new(64), &[7]);
        assert!(s.matches(&arena));
        arena.write(Addr::new(65), &[1]);
        assert_eq!(s.first_mismatch(&arena), Some(1));
    }

    #[test]
    #[should_panic]
    fn write_outside_txn_panics() {
        let mut s = ShadowDb::new(region());
        s.write(Addr::new(64), &[1]);
    }
}
