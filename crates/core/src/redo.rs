//! The redo ring used by the active-backup scheme (paper §6).
//!
//! With an active backup, the primary does **not** write its undo log or
//! mirror through; at commit it ships only the actually modified data, as
//! redo records, into a circular buffer that is write-through mapped onto
//! the backup. The backup CPU polls the ring, applies the records to its
//! copy of the database, and writes its consumer cursor back through a
//! reverse mapping (flow control).
//!
//! Cursors are monotone byte counters; `counter & (capacity - 1)` is the
//! ring offset. The producer cursor is published with a single 8-byte store
//! *after* a write-buffer barrier, so the backup only ever observes whole
//! committed transactions (and a crash can lose at most the in-flight
//! tail — the 1-safe window).
//!
//! Record wire format (8-byte aligned):
//!
//! | header `{len: u32, base_off: u32}` | meaning |
//! |---|---|
//! | `len == 0xFFFF_FFFF` | padding: skip to the next ring wrap |
//! | `len == 0` | commit marker; `base_off` = low bits of the sequence |
//! | otherwise | `len` payload bytes for database offset `base_off` |

use dsnrep_obs::Tracer;
use dsnrep_rio::{Layout, RootSlot};
use dsnrep_simcore::{Addr, Region, TrafficClass};

use crate::error::TxError;
use crate::machine::{Machine, StoreBatch};

const HDR: u64 = 8;
const PAD: u32 = 0xFFFF_FFFF;

fn rec_size(len: u64) -> u64 {
    HDR + len.div_ceil(8) * 8
}

/// The primary's side of the redo ring.
///
/// Writes staged during a transaction are coalesced (adjacent appends merge)
/// and shipped at commit by [`RedoWriter::publish_commit`].
#[derive(Debug)]
pub struct RedoWriter {
    ring: Region,
    db: Region,
    cap: u64,
    prod: u64,
    staged: Vec<(u64, Vec<u8>)>,
    /// Reused store batch: `publish_commit` stages the whole record stream
    /// (pads, headers, payloads, commit marker — a pure write run with no
    /// interleaved accounted reads) and flushes it as one
    /// [`Machine::write_batch`] call before the publication barrier.
    batch: StoreBatch,
}

impl RedoWriter {
    /// Creates a writer over `ring` for database region `db`.
    ///
    /// # Panics
    ///
    /// Panics if the ring length is not a power of two.
    pub fn new(ring: Region, db: Region) -> Self {
        assert!(
            ring.len().is_power_of_two(),
            "ring capacity must be a power of two"
        );
        RedoWriter {
            ring,
            db,
            cap: ring.len(),
            prod: 0,
            staged: Vec::new(),
            batch: StoreBatch::new(),
        }
    }

    /// Re-reads the producer cursor from the arena (crash recovery).
    pub fn attach<T: Tracer>(ring: Region, db: Region, m: &mut Machine<T>) -> Self {
        let mut w = Self::new(ring, db);
        w.prod = m
            .arena()
            .borrow()
            .read_u64(Layout::root_addr(RootSlot::RingProducer));
        w
    }

    /// The address of the producer cursor root (replicate this 8-byte region
    /// so the backup sees publications).
    pub fn producer_root() -> Region {
        Region::new(Layout::root_addr(RootSlot::RingProducer), 8)
    }

    /// The address of the consumer cursor root (the backup replicates this
    /// back to the primary).
    pub fn consumer_root() -> Region {
        Region::new(Layout::root_addr(RootSlot::RingConsumer), 8)
    }

    /// Stages one in-place database write for shipment at commit, merging
    /// it with the previous one when exactly adjacent.
    pub fn record_write(&mut self, base: Addr, bytes: &[u8]) {
        let off = base - self.db.start();
        if let Some((last_off, last)) = self.staged.last_mut() {
            if *last_off + last.len() as u64 == off {
                last.extend_from_slice(bytes);
                return;
            }
        }
        self.staged.push((off, bytes.to_vec()));
    }

    /// Discards the staged writes (abort).
    pub fn discard(&mut self) {
        self.staged.clear();
    }

    /// Number of staged records.
    pub fn staged_records(&self) -> usize {
        self.staged.len()
    }

    /// Exact ring bytes the staged transaction needs (records + commit
    /// marker + any wrap padding), given the current producer position.
    pub fn bytes_needed(&self) -> u64 {
        let mut pos = self.prod;
        for (_, data) in &self.staged {
            let size = rec_size(data.len() as u64);
            let contig = self.cap - (pos & (self.cap - 1));
            if size > contig {
                pos += contig; // pad
            }
            pos += size;
        }
        let contig = self.cap - (pos & (self.cap - 1));
        if HDR > contig {
            pos += contig;
        }
        pos += HDR; // commit marker
        pos - self.prod
    }

    /// Free ring space as seen by the primary (reads the consumer cursor
    /// the backup wrote back).
    pub fn free_space<T: Tracer>(&self, m: &mut Machine<T>) -> u64 {
        let cons = m.read_u64(Layout::root_addr(RootSlot::RingConsumer));
        self.cap - (self.prod - cons)
    }

    /// Ships the staged transaction: records, commit marker, barrier,
    /// producer-cursor publication.
    ///
    /// The caller must have established space (see
    /// [`RedoWriter::bytes_needed`] / [`RedoWriter::free_space`]); the
    /// replication driver stalls the primary until the backup catches up.
    ///
    /// # Errors
    ///
    /// [`TxError::RedoRecordTooLarge`] if a single staged record cannot fit
    /// in the ring at all (nothing is shipped; the staging is preserved).
    pub fn publish_commit<T: Tracer>(
        &mut self,
        m: &mut Machine<T>,
        seq: u64,
    ) -> Result<(), TxError> {
        for (_, data) in &self.staged {
            let size = rec_size(data.len() as u64);
            if size + HDR > self.cap {
                return Err(TxError::RedoRecordTooLarge {
                    needed: size,
                    capacity: self.cap,
                });
            }
        }
        let staged = std::mem::take(&mut self.staged);
        for (off, data) in &staged {
            let size = rec_size(data.len() as u64);
            let contig = self.cap - (self.prod & (self.cap - 1));
            if size > contig {
                self.stage_pad(contig);
            }
            let at = self.ring.start() + (self.prod & (self.cap - 1));
            let mut hdr = [0u8; 8];
            hdr[..4].copy_from_slice(
                &u32::try_from(data.len() as u64)
                    .expect("record < 4 GB")
                    .to_le_bytes(),
            );
            hdr[4..].copy_from_slice(&u32::try_from(*off).expect("db < 4 GB").to_le_bytes());
            self.batch.push(at, &hdr, TrafficClass::Meta);
            self.batch.push(at + HDR, data, TrafficClass::Modified);
            self.prod += size;
        }
        let contig = self.cap - (self.prod & (self.cap - 1));
        if HDR > contig {
            self.stage_pad(contig);
        }
        let at = self.ring.start() + (self.prod & (self.cap - 1));
        let mut marker = [0u8; 8];
        marker[4..].copy_from_slice(&(seq as u32).to_le_bytes());
        self.batch.push(at, &marker, TrafficClass::Meta);
        self.prod += HDR;
        m.write_batch(&mut self.batch);
        // Publish: every record precedes the cursor on the wire.
        m.barrier();
        m.write_u64(
            Layout::root_addr(RootSlot::RingProducer),
            self.prod,
            TrafficClass::Meta,
        );
        Ok(())
    }

    fn stage_pad(&mut self, contig: u64) {
        let at = self.ring.start() + (self.prod & (self.cap - 1));
        let mut hdr = [0u8; 8];
        hdr[..4].copy_from_slice(&PAD.to_le_bytes());
        self.batch.push(at, &hdr, TrafficClass::Meta);
        self.prod += contig;
    }
}

/// What one [`RedoReader::poll`] applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Applied {
    /// Commit markers consumed (whole transactions applied).
    pub txns: u64,
    /// Payload bytes applied to the database.
    pub bytes: u64,
}

/// The backup's side of the redo ring.
#[derive(Debug)]
pub struct RedoReader {
    ring: Region,
    db: Region,
    cap: u64,
    cons: u64,
    seq: u64,
    /// Reused record buffer: `poll` applies one record per iteration and
    /// must not allocate per record.
    scratch: Vec<u8>,
}

impl RedoReader {
    /// Creates a reader over the backup's copy of the ring.
    ///
    /// # Panics
    ///
    /// Panics if the ring length is not a power of two.
    pub fn new(ring: Region, db: Region) -> Self {
        assert!(
            ring.len().is_power_of_two(),
            "ring capacity must be a power of two"
        );
        RedoReader {
            ring,
            db,
            cap: ring.len(),
            cons: 0,
            seq: 0,
            scratch: Vec::new(),
        }
    }

    /// Committed transactions applied so far.
    pub fn applied_seq(&self) -> u64 {
        self.seq
    }

    /// Consumes every published record: applies payloads to the backup's
    /// database, advances the consumer cursor, and writes the cursor back
    /// (write-through) once per commit marker — all charged to the backup
    /// machine's clock.
    pub fn poll<T: Tracer>(&mut self, m: &mut Machine<T>) -> Applied {
        let prod = m.read_u64(Layout::root_addr(RootSlot::RingProducer));
        let mut applied = Applied::default();
        while self.cons < prod {
            let at = self.ring.start() + (self.cons & (self.cap - 1));
            let len = m.read_u32(at);
            let base_off = m.read_u32(at + 4);
            if len == PAD {
                self.cons += self.cap - (self.cons & (self.cap - 1));
                continue;
            }
            if len == 0 {
                // Commit marker: the applied state is now a transaction
                // boundary; write the cursor back to the primary.
                self.cons += HDR;
                self.seq += 1;
                applied.txns += 1;
                m.write_u64(
                    Layout::root_addr(RootSlot::RingConsumer),
                    self.cons,
                    TrafficClass::Meta,
                );
                m.barrier();
                continue;
            }
            self.scratch.resize(len as usize, 0);
            m.read(at + HDR, &mut self.scratch[..]);
            m.charge(dsnrep_simcore::VirtualDuration::from_picos(
                m.costs().copy_per_byte.as_picos() * u64::from(len),
            ));
            m.write(
                self.db.start() + u64::from(base_off),
                &self.scratch,
                TrafficClass::Modified,
            );
            applied.bytes += u64::from(len);
            self.cons += rec_size(u64::from(len));
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnrep_simcore::{CostModel, Region, TrafficClass, VirtualInstant};

    /// A standalone machine pair sharing one arena: the writer and reader
    /// operate on the same memory (no SAN in between), which isolates the
    /// ring protocol itself.
    fn setup(ring_len: u64) -> (Machine, RedoWriter, RedoReader, Region) {
        let arena = crate::shared_arena(1 << 16);
        let m = Machine::standalone(CostModel::alpha_21164a(), arena);
        let ring = Region::new(Addr::new(4096), ring_len);
        let db = Region::new(Addr::new(4096 + ring_len), 8192);
        let writer = RedoWriter::new(ring, db);
        let reader = RedoReader::new(ring, db);
        (m, writer, reader, db)
    }

    #[test]
    fn publish_then_poll_applies_payloads() {
        let (mut m, mut writer, mut reader, db) = setup(1024);
        writer.record_write(db.start() + 16, &[1, 2, 3, 4]);
        writer.record_write(db.start() + 100, &[9; 12]);
        writer.publish_commit(&mut m, 1).expect("fits");
        let applied = reader.poll(&mut m);
        assert_eq!(applied.txns, 1);
        assert_eq!(applied.bytes, 16);
        assert_eq!(m.peek_vec(db.start() + 16, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.peek_vec(db.start() + 100, 12), vec![9; 12]);
        assert_eq!(reader.applied_seq(), 1);
    }

    #[test]
    fn adjacent_writes_coalesce_into_one_record() {
        let (_, mut writer, _, db) = setup(1024);
        writer.record_write(db.start(), &[1; 8]);
        writer.record_write(db.start() + 8, &[2; 8]);
        assert_eq!(writer.staged_records(), 1, "adjacent appends merge");
        writer.record_write(db.start() + 100, &[3; 8]);
        assert_eq!(writer.staged_records(), 2);
    }

    #[test]
    fn discard_drops_the_staging() {
        let (mut m, mut writer, mut reader, db) = setup(1024);
        writer.record_write(db.start(), &[5; 8]);
        writer.discard();
        writer.publish_commit(&mut m, 1).expect("empty commit fits");
        let applied = reader.poll(&mut m);
        assert_eq!(applied.bytes, 0);
        assert_eq!(applied.txns, 1, "the commit marker still travels");
    }

    #[test]
    fn ring_wraps_with_padding() {
        let (mut m, mut writer, mut reader, db) = setup(256);
        // Fill the ring several times over; the reader keeps pace.
        for seq in 1..=40u64 {
            writer.record_write(db.start() + (seq % 7) * 24, &[seq as u8; 20]);
            let needed = writer.bytes_needed();
            assert!(writer.free_space(&mut m) >= needed, "reader keeps pace");
            writer.publish_commit(&mut m, seq).expect("fits");
            reader.poll(&mut m);
        }
        assert_eq!(reader.applied_seq(), 40);
    }

    #[test]
    fn bytes_needed_accounts_for_wrap_padding() {
        let (mut m, mut writer, mut reader, db) = setup(256);
        // Advance the cursors to just before the wrap point.
        for seq in 1..=3u64 {
            writer.record_write(db.start(), &[0; 48]);
            writer.publish_commit(&mut m, seq).expect("fits");
            reader.poll(&mut m);
        }
        // A record that cannot fit in the remaining contiguous space must
        // include the pad in its size estimate.
        writer.record_write(db.start(), &[7; 100]);
        let needed = writer.bytes_needed();
        assert!(
            needed >= 8 + 104,
            "needs header + padded payload, got {needed}"
        );
        writer.publish_commit(&mut m, 4).expect("fits after pad");
        let applied = reader.poll(&mut m);
        assert_eq!(applied.bytes, 100);
        assert_eq!(m.peek_vec(db.start(), 100), vec![7; 100]);
    }

    #[test]
    fn oversized_record_is_rejected_not_corrupted() {
        let (mut m, mut writer, _, db) = setup(64);
        writer.record_write(db.start(), &[1; 200]);
        let err = writer.publish_commit(&mut m, 1).unwrap_err();
        assert!(matches!(err, TxError::RedoRecordTooLarge { .. }), "{err}");
    }

    #[test]
    fn reader_only_sees_published_records() {
        let (mut m, mut writer, mut reader, db) = setup(1024);
        writer.record_write(db.start(), &[1; 8]);
        // Not yet published: the reader must see nothing.
        let applied = reader.poll(&mut m);
        assert_eq!(applied.txns + applied.bytes, 0);
        writer.publish_commit(&mut m, 1).expect("fits");
        assert_eq!(reader.poll(&mut m).txns, 1);
    }

    #[test]
    fn cursor_roots_are_exposed_for_replication() {
        assert_eq!(RedoWriter::producer_root().len(), 8);
        assert_eq!(RedoWriter::consumer_root().len(), 8);
        assert!(!RedoWriter::producer_root().overlaps(RedoWriter::consumer_root()));
        let _ = VirtualInstant::EPOCH;
        let _ = TrafficClass::Meta;
    }
}
