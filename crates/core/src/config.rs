//! Engine sizing configuration.

use dsnrep_simcore::MIB;

/// Sizes for the persistent structures an engine lays out in its arena.
///
/// This is passive configuration data; fields are public.
///
/// # Examples
///
/// ```
/// use dsnrep_core::EngineConfig;
///
/// let config = EngineConfig::for_db(50 * 1024 * 1024); // the paper's 50 MB
/// assert_eq!(config.db_len, 50 * 1024 * 1024);
/// assert!(config.undo_capacity >= 1024 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Database region length in bytes.
    pub db_len: u64,
    /// Capacity of the set-range record array (Versions 1 and 2), and the
    /// sanity cap on ranges per transaction everywhere else.
    pub max_ranges: usize,
    /// Bytes for the undo structures: the recoverable heap (Version 0) or
    /// the inline undo log (Version 3).
    pub undo_capacity: u64,
    /// Bytes for the redo ring (active backup). Must be a power of two.
    pub ring_capacity: u64,
}

impl EngineConfig {
    /// Sensible defaults for a database of `db_len` bytes: 4 MB of undo
    /// space, a 128 KB redo ring (small enough to stay cache-resident on
    /// both ends), 4096 set-range records.
    pub fn for_db(db_len: u64) -> Self {
        EngineConfig {
            db_len,
            max_ranges: 4096,
            undo_capacity: 4 * MIB,
            ring_capacity: 128 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::for_db(1 << 20);
        assert!(c.ring_capacity.is_power_of_two());
        assert!(c.max_ranges > 0);
    }
}
