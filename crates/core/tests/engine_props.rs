//! Property tests: random transaction schedules with random crash points,
//! verified against the shadow oracle, for all four engine versions.

use std::cell::RefCell;
use std::rc::Rc;

use dsnrep_core::{
    arena_len, attach_engine, build_engine, Engine, EngineConfig, Machine, ShadowDb, VersionTag,
};
use dsnrep_rio::Arena;
use dsnrep_simcore::{Addr, CostModel, SplitMix64};
use proptest::prelude::*;

const DB_LEN: u64 = 16 * 1024;

#[derive(Clone, Copy, Debug)]
enum Outcome {
    Commit,
    Abort,
    /// Crash after this many steps into the transaction
    /// (0 = right after begin).
    CrashAfter(u8),
}

#[derive(Clone, Copy, Debug)]
struct TxnPlan {
    ranges: u8,
    outcome: Outcome,
    seed: u64,
}

fn txn_strategy() -> impl Strategy<Value = TxnPlan> {
    (
        1u8..5,
        prop_oneof![
            5 => Just(Outcome::Commit),
            2 => Just(Outcome::Abort),
            1 => (0u8..8).prop_map(Outcome::CrashAfter),
        ],
        any::<u64>(),
    )
        .prop_map(|(ranges, outcome, seed)| TxnPlan {
            ranges,
            outcome,
            seed,
        })
}

fn version_strategy() -> impl Strategy<Value = VersionTag> {
    prop_oneof![
        Just(VersionTag::Vista),
        Just(VersionTag::MirrorCopy),
        Just(VersionTag::MirrorDiff),
        Just(VersionTag::ImprovedLog),
    ]
}

/// Runs one transaction plan; returns `false` if the plan crashed (so the
/// caller recovers before continuing).
fn run_txn(
    e: &mut dyn Engine,
    m: &mut Machine,
    shadow: &mut ShadowDb,
    plan: TxnPlan,
) -> Result<bool, TestCaseError> {
    let db = e.db_region();
    let mut rng = SplitMix64::new(plan.seed);
    e.begin(m).unwrap();
    shadow.begin();
    let crash_step = match plan.outcome {
        Outcome::CrashAfter(s) => Some(u64::from(s)),
        _ => None,
    };
    let mut step = 0u64;
    for _ in 0..plan.ranges {
        if crash_step == Some(step) {
            shadow.abort(); // the crash will roll this transaction back
            return Ok(false);
        }
        step += 1;
        let len = 1 + rng.next_below(64);
        let off = rng.next_below(db.len() - len);
        let base = db.start() + off;
        e.set_range(m, base, len).unwrap();
        let mut data = vec![0u8; len as usize];
        for b in &mut data {
            *b = rng.next_u64() as u8;
        }
        if crash_step == Some(step) {
            shadow.abort();
            return Ok(false);
        }
        step += 1;
        e.write(m, base, &data).unwrap();
        shadow.write(base, &data);
    }
    match plan.outcome {
        Outcome::Commit => {
            e.commit(m).unwrap();
            shadow.commit();
        }
        Outcome::Abort => {
            e.abort(m).unwrap();
            shadow.abort();
        }
        Outcome::CrashAfter(_) => {
            // Crash after all the writes but before commit.
            shadow.abort();
            return Ok(false);
        }
    }
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of committed, aborted and crashed transactions
    /// recovers to exactly the committed prefix (standalone: no 1-safe
    /// window exists).
    #[test]
    fn schedule_with_crashes_recovers_to_shadow(
        version in version_strategy(),
        plans in prop::collection::vec(txn_strategy(), 1..25),
    ) {
        let config = EngineConfig::for_db(DB_LEN);
        let arena = Rc::new(RefCell::new(Arena::new(arena_len(version, &config))));
        let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
        let mut engine = build_engine(version, &mut m, &config);
        let mut shadow = ShadowDb::new(engine.db_region());

        for plan in plans {
            let survived = run_txn(engine.as_mut(), &mut m, &mut shadow, plan)?;
            if !survived {
                drop(engine);
                m.crash();
                engine = attach_engine(version, &mut m);
                engine.recover(&mut m);
            }
            prop_assert!(
                shadow.matches(&arena.borrow()),
                "{version}: mismatch at {:?} after {plan:?}",
                shadow.first_mismatch(&arena.borrow())
            );
        }
        prop_assert_eq!(engine.committed_seq(&mut m), shadow.seq());
    }

    /// Reads always observe the engine's own in-place writes.
    #[test]
    fn reads_see_in_place_writes(
        version in version_strategy(),
        off in 0u64..(DB_LEN - 64),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let config = EngineConfig::for_db(DB_LEN);
        let arena = Rc::new(RefCell::new(Arena::new(arena_len(version, &config))));
        let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
        let mut engine = build_engine(version, &mut m, &config);
        let base = engine.db_region().start() + off;
        engine.begin(&mut m).unwrap();
        engine.set_range(&mut m, base, data.len() as u64).unwrap();
        engine.write(&mut m, base, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        engine.read(&mut m, base, &mut buf);
        prop_assert_eq!(&buf, &data, "{} uncommitted read", version);
        engine.commit(&mut m).unwrap();
        engine.read(&mut m, base, &mut buf);
        prop_assert_eq!(&buf, &data, "{} committed read", version);
    }
}

/// Crashing *during* commit processing must still recover to a transaction
/// boundary. We drive this deterministically by crashing right after commit
/// returns on a cloned arena snapshot taken mid-commit is not possible from
/// outside, so instead we exercise the weaker—but still strong—property:
/// a crash immediately after commit keeps the transaction.
#[test]
fn crash_immediately_after_commit_keeps_the_transaction() {
    for version in VersionTag::ALL {
        let config = EngineConfig::for_db(DB_LEN);
        let arena = Rc::new(RefCell::new(Arena::new(arena_len(version, &config))));
        let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
        let mut engine = build_engine(version, &mut m, &config);
        let base = engine.db_region().start();
        engine.begin(&mut m).unwrap();
        engine.set_range(&mut m, base, 8).unwrap();
        engine.write(&mut m, base, &[1; 8]).unwrap();
        engine.commit(&mut m).unwrap();
        drop(engine);
        m.crash();
        let mut engine = attach_engine(version, &mut m);
        let report = engine.recover(&mut m);
        assert_eq!(report.committed_seq, 1, "{version}");
        assert_eq!(
            arena.borrow().read_vec(Addr::new(base.as_u64()), 8),
            vec![1; 8],
            "{version}"
        );
    }
}
