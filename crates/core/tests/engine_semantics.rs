//! Engine semantics matrix: every behaviour checked across all four
//! versions.

use std::cell::RefCell;
use std::rc::Rc;

use dsnrep_core::{
    arena_len, attach_engine, build_engine, Engine, EngineConfig, Machine, ShadowDb, TxError,
    VersionTag,
};
use dsnrep_rio::Arena;
use dsnrep_simcore::{CostModel, VirtualInstant};

fn setup(version: VersionTag) -> (Machine, Box<dyn Engine>, Rc<RefCell<Arena>>) {
    let config = EngineConfig::for_db(64 * 1024);
    let arena = Rc::new(RefCell::new(Arena::new(arena_len(version, &config))));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
    let engine = build_engine(version, &mut m, &config);
    (m, engine, arena)
}

fn for_each_version(mut f: impl FnMut(VersionTag)) {
    for v in VersionTag::ALL {
        f(v);
    }
}

#[test]
fn committed_writes_are_durable() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db + 16, 8).unwrap();
        e.write(&mut m, db + 16, &0xFEED_u64.to_le_bytes()).unwrap();
        e.commit(&mut m).unwrap();
        assert_eq!(arena.borrow().read_u64(db + 16), 0xFEED, "{v}");
        assert_eq!(e.committed_seq(&mut m), 1, "{v}");
    });
}

#[test]
fn abort_restores_all_ranges() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db = e.db_region().start();
        // Seed committed state.
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 32).unwrap();
        e.write(&mut m, db, &[0xAA; 32]).unwrap();
        e.commit(&mut m).unwrap();
        // Abort a transaction touching two ranges.
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 16).unwrap();
        e.set_range(&mut m, db + 100, 8).unwrap();
        e.write(&mut m, db, &[0xBB; 16]).unwrap();
        e.write(&mut m, db + 100, &[0xCC; 8]).unwrap();
        e.abort(&mut m).unwrap();
        assert_eq!(arena.borrow().read_vec(db, 32), vec![0xAA; 32], "{v}");
        assert_eq!(arena.borrow().read_vec(db + 100, 8), vec![0; 8], "{v}");
        assert_eq!(e.committed_seq(&mut m), 1, "{v}");
    });
}

#[test]
fn overlapping_set_ranges_abort_to_oldest() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 16).unwrap();
        e.write(&mut m, db, &[1; 16]).unwrap();
        // Second, overlapping set_range captures the already-modified data.
        e.set_range(&mut m, db + 8, 16).unwrap();
        e.write(&mut m, db + 8, &[2; 16]).unwrap();
        e.abort(&mut m).unwrap();
        // The pre-transaction data (zeros) must win everywhere.
        assert_eq!(arena.borrow().read_vec(db, 24), vec![0; 24], "{v}");
    });
}

#[test]
fn write_outside_set_range_is_rejected() {
    for_each_version(|v| {
        let (mut m, mut e, _) = setup(v);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 8).unwrap();
        let err = e.write(&mut m, db + 8, &[1]).unwrap_err();
        assert!(
            matches!(err, TxError::UnprotectedWrite { .. }),
            "{v}: {err}"
        );
        // A partially covered write is also rejected.
        let err = e.write(&mut m, db + 4, &[1; 8]).unwrap_err();
        assert!(
            matches!(err, TxError::UnprotectedWrite { .. }),
            "{v}: {err}"
        );
        e.abort(&mut m).unwrap();
    });
}

#[test]
fn api_state_machine_is_enforced() {
    for_each_version(|v| {
        let (mut m, mut e, _) = setup(v);
        let db = e.db_region().start();
        assert_eq!(e.commit(&mut m), Err(TxError::NoActiveTransaction), "{v}");
        assert_eq!(e.abort(&mut m), Err(TxError::NoActiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_range(&mut m, db, 8),
                Err(TxError::NoActiveTransaction)
            ),
            "{v}"
        );
        e.begin(&mut m).unwrap();
        assert_eq!(e.begin(&mut m), Err(TxError::TransactionActive), "{v}");
        e.abort(&mut m).unwrap();
    });
}

#[test]
fn set_range_outside_db_is_rejected() {
    for_each_version(|v| {
        let (mut m, mut e, _) = setup(v);
        let db = e.db_region();
        e.begin(&mut m).unwrap();
        let err = e.set_range(&mut m, db.end() - 4, 8).unwrap_err();
        assert!(matches!(err, TxError::RangeOutOfDatabase { .. }), "{v}");
        e.abort(&mut m).unwrap();
    });
}

#[test]
fn crash_mid_transaction_rolls_back() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 64).unwrap();
        e.write(&mut m, db, &[0x11; 64]).unwrap();
        e.commit(&mut m).unwrap();

        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db + 32, 64).unwrap();
        e.write(&mut m, db + 32, &[0x22; 64]).unwrap();
        drop(e); // the crash destroys all volatile state
        m.crash();

        let mut e = attach_engine(v, &mut m);
        let report = e.recover(&mut m);
        assert!(report.rolled_back, "{v}");
        assert_eq!(report.committed_seq, 1, "{v}");
        assert_eq!(arena.borrow().read_vec(db, 64), vec![0x11; 64], "{v}");
        assert_eq!(arena.borrow().read_vec(db + 64, 32), vec![0; 32], "{v}");

        // The engine is usable again after recovery.
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 8).unwrap();
        e.write(&mut m, db, &[9; 8]).unwrap();
        e.commit(&mut m).unwrap();
        assert_eq!(e.committed_seq(&mut m), 2, "{v}");
    });
}

#[test]
fn crash_with_no_transaction_recovers_cleanly() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 8).unwrap();
        e.write(&mut m, db, &[5; 8]).unwrap();
        e.commit(&mut m).unwrap();
        drop(e);
        m.crash();
        let mut e = attach_engine(v, &mut m);
        let report = e.recover(&mut m);
        assert!(!report.rolled_back, "{v}");
        assert_eq!(report.committed_seq, 1, "{v}");
        assert_eq!(arena.borrow().read_vec(db, 8), vec![5; 8], "{v}");
    });
}

#[test]
fn recovery_is_idempotent() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 16).unwrap();
        e.write(&mut m, db, &[3; 16]).unwrap();
        drop(e);
        m.crash();
        let mut e = attach_engine(v, &mut m);
        e.recover(&mut m);
        let again = e.recover(&mut m);
        assert!(!again.rolled_back, "{v}: second recovery must be a no-op");
        assert_eq!(arena.borrow().read_vec(db, 16), vec![0; 16], "{v}");
    });
}

#[test]
fn long_random_schedule_matches_shadow() {
    for_each_version(|v| {
        let (mut m, mut e, arena) = setup(v);
        let db_region = e.db_region();
        let mut shadow = ShadowDb::new(db_region);
        let mut rng = dsnrep_simcore::SplitMix64::new(0xD5E1 + v as u64);
        for i in 0..300 {
            e.begin(&mut m).unwrap();
            shadow.begin();
            let n_ranges = 1 + rng.next_below(4);
            for _ in 0..n_ranges {
                let len = 1 + rng.next_below(96);
                let off = rng.next_below(db_region.len() - len);
                let base = db_region.start() + off;
                e.set_range(&mut m, base, len).unwrap();
                let mut data = vec![0u8; len as usize];
                for b in &mut data {
                    *b = rng.next_u64() as u8;
                }
                e.write(&mut m, base, &data).unwrap();
                shadow.write(base, &data);
            }
            if i % 7 == 3 {
                e.abort(&mut m).unwrap();
                shadow.abort();
            } else {
                e.commit(&mut m).unwrap();
                shadow.commit();
            }
        }
        assert!(
            shadow.matches(&arena.borrow()),
            "{v}: first mismatch at {:?}",
            shadow.first_mismatch(&arena.borrow())
        );
        assert_eq!(e.committed_seq(&mut m), shadow.seq(), "{v}");
        assert!(m.now() > VirtualInstant::EPOCH);
    });
}

/// The paper's Table 3 mechanism: the restructured versions beat Version 0
/// standalone, and Version 3 beats the mirroring versions.
#[test]
fn standalone_cost_ordering_matches_table3() {
    let mut times = Vec::new();
    for v in VersionTag::ALL {
        let (mut m, mut e, _) = setup(v);
        let db_region = e.db_region();
        let mut rng = dsnrep_simcore::SplitMix64::new(7);
        for _ in 0..500 {
            e.begin(&mut m).unwrap();
            for _ in 0..4 {
                let len = 16;
                let off = rng.next_below(db_region.len() - len) & !7;
                let base = db_region.start() + off;
                e.set_range(&mut m, base, len).unwrap();
                e.write(&mut m, base, &rng.next_u64().to_le_bytes())
                    .unwrap();
            }
            e.commit(&mut m).unwrap();
        }
        times.push((v, m.now().as_picos()));
    }
    let t = |v: VersionTag| times.iter().find(|(x, _)| *x == v).expect("present").1;
    assert!(
        t(VersionTag::Vista) > t(VersionTag::MirrorCopy),
        "V1 should beat V0 standalone: {times:?}"
    );
    assert!(
        t(VersionTag::Vista) > t(VersionTag::MirrorDiff),
        "V2 should beat V0 standalone: {times:?}"
    );
    assert!(
        t(VersionTag::MirrorCopy) > t(VersionTag::ImprovedLog),
        "V3 should beat V1 standalone: {times:?}"
    );
}
