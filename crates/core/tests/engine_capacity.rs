//! Capacity-limit behaviour: every engine fails gracefully — with a typed
//! error, and with the transaction still abortable — when its undo
//! structures fill up.

use dsnrep_core::{
    build_engine, Engine, EngineConfig, ImprovedLogEngine, Machine, MirrorEngine, MirrorStrategy,
    TxError, VersionTag, VistaEngine,
};
use dsnrep_simcore::CostModel;

fn machine_for(version: VersionTag, config: &EngineConfig) -> Machine {
    let arena = dsnrep_core::shared_arena(dsnrep_core::arena_len(version, config));
    Machine::standalone(CostModel::alpha_21164a(), arena)
}

#[test]
fn v3_reports_log_exhaustion_and_recovers_by_abort() {
    let mut config = EngineConfig::for_db(1 << 16);
    config.undo_capacity = 256; // room for a couple of records only
    let mut m = machine_for(VersionTag::ImprovedLog, &config);
    let mut e = ImprovedLogEngine::format(&mut m, &config);
    let db = e.db_region().start();

    e.begin(&mut m).unwrap();
    e.set_range(&mut m, db, 128).unwrap();
    e.write(&mut m, db, &[1; 128]).unwrap();
    let err = e.set_range(&mut m, db + 512, 128).unwrap_err();
    assert!(matches!(err, TxError::UndoLogFull { .. }), "{err}");
    // The failed range must not be writable.
    assert!(matches!(
        e.write(&mut m, db + 512, &[2; 8]),
        Err(TxError::UnprotectedWrite { .. })
    ));
    // Abort restores the ranges that *did* succeed.
    e.abort(&mut m).unwrap();
    let mut buf = [9u8; 128];
    e.read(&mut m, db, &mut buf);
    assert_eq!(buf, [0u8; 128]);
}

#[test]
fn mirror_reports_range_array_exhaustion() {
    let mut config = EngineConfig::for_db(1 << 16);
    config.max_ranges = 3;
    let mut m = machine_for(VersionTag::MirrorCopy, &config);
    let mut e = MirrorEngine::format(&mut m, &config, MirrorStrategy::Copy);
    let db = e.db_region().start();

    e.begin(&mut m).unwrap();
    for i in 0..3u64 {
        e.set_range(&mut m, db + i * 64, 16).unwrap();
    }
    let err = e.set_range(&mut m, db + 1024, 16).unwrap_err();
    assert_eq!(err, TxError::TooManyRanges { capacity: 3 });
    e.abort(&mut m).unwrap();
}

#[test]
fn v0_reports_heap_exhaustion_with_a_source_chain() {
    let mut config = EngineConfig::for_db(1 << 16);
    config.undo_capacity = 512; // tiny recoverable heap
    let mut m = machine_for(VersionTag::Vista, &config);
    let mut e = VistaEngine::format(&mut m, &config);
    let db = e.db_region().start();

    e.begin(&mut m).unwrap();
    let mut filled = 0u64;
    let err = loop {
        match e.set_range(&mut m, db + filled * 64, 48) {
            Ok(()) => filled += 1,
            Err(err) => break err,
        }
        assert!(filled < 100, "the tiny heap must fill up");
    };
    assert!(matches!(err, TxError::UndoAllocFailed(_)), "{err}");
    assert!(
        std::error::Error::source(&err).is_some(),
        "alloc failure is chained"
    );
    // Successful ranges still abort cleanly.
    e.abort(&mut m).unwrap();
    assert_eq!(e.committed_seq(&mut m), 0);
}

#[test]
fn engines_keep_working_after_a_capacity_error() {
    // After an exhaustion error + abort, normal transactions proceed.
    for version in VersionTag::ALL {
        let mut config = EngineConfig::for_db(1 << 16);
        config.undo_capacity = 512;
        config.max_ranges = 4;
        let mut m = machine_for(version, &config);
        let mut e = build_engine(version, &mut m, &config);
        let db = e.db_region().start();

        e.begin(&mut m).unwrap();
        let mut i = 0u64;
        while e.set_range(&mut m, db + i * 48, 32).is_ok() {
            i += 1;
            if i > 200 {
                break; // mirrors have generous limits relative to this db
            }
        }
        e.abort(&mut m).unwrap();

        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 16).unwrap();
        e.write(&mut m, db, &[5; 16]).unwrap();
        e.commit(&mut m).unwrap();
        assert_eq!(e.committed_seq(&mut m), 1, "{version}");
    }
}
