//! Store-budget fault-hook semantics.
//!
//! The exhaustive every-store-boundary recovery sweep that used to live
//! here moved to `crates/faultsim/tests/campaigns.rs`: the FaultPlan
//! explorer (`dsnrep_faultsim::exhaustive_single_fault`) now drives the
//! same sweep for every engine version through the shared shadow oracle,
//! so this file keeps only the low-level contract of the injection hook
//! itself.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use dsnrep_core::{arena_len, EngineConfig, Machine, VersionTag};
use dsnrep_simcore::{Addr, CostModel};

const DB_LEN: u64 = 32 * 1024;

#[test]
fn halted_machine_panics_at_the_exact_store() {
    let config = EngineConfig::for_db(DB_LEN);
    let arena = dsnrep_core::shared_arena(arena_len(VersionTag::ImprovedLog, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
    m.inject_crash_after_stores(1);
    m.write(Addr::new(0), &[1], dsnrep_simcore::TrafficClass::Meta);
    let result = catch_unwind(AssertUnwindSafe(|| {
        m.write(Addr::new(8), &[2], dsnrep_simcore::TrafficClass::Meta);
    }));
    assert!(result.is_err(), "the second store must halt");
    assert_eq!(
        arena.borrow().read_vec(Addr::new(0), 1),
        vec![1],
        "first store landed"
    );
    assert_eq!(
        arena.borrow().read_vec(Addr::new(8), 1),
        vec![0],
        "second store dropped"
    );
    m.clear_fault();
    m.write(Addr::new(8), &[2], dsnrep_simcore::TrafficClass::Meta);
    assert_eq!(arena.borrow().read_vec(Addr::new(8), 1), vec![2]);
}
