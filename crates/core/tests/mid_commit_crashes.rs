//! Exhaustive mid-operation crash sweep: halt the simulated processor at
//! *every single store boundary* of a transaction batch — including inside
//! commit processing (flag writes, mirror propagation, undo-list frees) —
//! and require recovery to land exactly on a transaction boundary.
//!
//! The halt is a panic at the faulting store (a real crash executes nothing
//! further); the sweep catches the unwind, discards all volatile state, and
//! recovers from the surviving arena. This is the strongest atomicity test
//! in the repository: nothing is assumed about where commits can be
//! interrupted.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use dsnrep_core::{arena_len, attach_engine, build_engine, EngineConfig, Machine, VersionTag};
use dsnrep_rio::Arena;
use dsnrep_simcore::{Addr, CostModel, SplitMix64};

const DB_LEN: u64 = 32 * 1024;
const TXNS: u64 = 6;

/// Runs up to `TXNS` deterministic transactions; with a store budget the
/// run ends in the injected halt (caught here). Returns the surviving
/// arena and whether the halt fired.
fn run_with_budget(version: VersionTag, budget: Option<u64>) -> (Rc<RefCell<Arena>>, bool) {
    let config = EngineConfig::for_db(DB_LEN);
    let arena = dsnrep_core::shared_arena(arena_len(version, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
    let mut e = build_engine(version, &mut m, &config);
    if let Some(b) = budget {
        m.inject_crash_after_stores(b);
    }
    let db = e.db_region();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = SplitMix64::new(0xFA117);
        for _ in 0..TXNS {
            e.begin(&mut m).expect("begin");
            for _ in 0..3 {
                let len = 8 + rng.next_below(24);
                let off = rng.next_below(db.len() - len);
                let base = db.start() + off;
                e.set_range(&mut m, base, len).expect("set_range");
                let mut data = vec![0u8; len as usize];
                for b in &mut data {
                    *b = rng.next_u64() as u8;
                }
                e.write(&mut m, base, &data).expect("write");
            }
            e.commit(&mut m).expect("commit");
        }
    }));
    let halted = match result {
        Ok(()) => false,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            assert!(
                msg.contains("fault injection"),
                "{version}: unexpected panic during the sweep: {msg}"
            );
            true
        }
    };
    (arena, halted)
}

/// The reference database image after exactly `seq` committed transactions.
fn reference_image(version: VersionTag, seq: u64) -> Vec<u8> {
    let config = EngineConfig::for_db(DB_LEN);
    let arena = dsnrep_core::shared_arena(arena_len(version, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
    let mut e = build_engine(version, &mut m, &config);
    let db = e.db_region();
    let mut rng = SplitMix64::new(0xFA117);
    for _ in 0..seq {
        e.begin(&mut m).expect("begin");
        for _ in 0..3 {
            let len = 8 + rng.next_below(24);
            let off = rng.next_below(db.len() - len);
            let base = db.start() + off;
            e.set_range(&mut m, base, len).expect("set_range");
            let mut data = vec![0u8; len as usize];
            for b in &mut data {
                *b = rng.next_u64() as u8;
            }
            e.write(&mut m, base, &data).expect("write");
        }
        e.commit(&mut m).expect("commit");
    }
    let image = m.arena().borrow().read_vec(db.start(), db.len() as usize);
    image
}

#[test]
fn every_store_boundary_recovers_to_a_transaction_boundary() {
    for version in VersionTag::ALL {
        let mut budget = 0u64;
        let mut checked = 0u32;
        loop {
            let (arena, halted) = run_with_budget(version, Some(budget));
            // Reboot: fresh machine over the surviving arena, cold cache.
            let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
            let mut engine = attach_engine(version, &mut m);
            let report = engine.recover(&mut m);
            let seq = report.committed_seq;
            assert!(
                seq <= TXNS,
                "{version}: budget {budget} recovered seq {seq}"
            );
            let reference = reference_image(version, seq);
            let db = engine.db_region();
            let actual = m.arena().borrow().read_vec(db.start(), db.len() as usize);
            if actual != reference {
                let first = reference
                    .iter()
                    .zip(actual.iter())
                    .position(|(a, b)| a != b)
                    .expect("differs");
                panic!(
                    "{version}: crash after {budget} stores recovered to seq {seq} \
                     but diverges from the reference at db offset {first}"
                );
            }
            checked += 1;
            if !halted {
                break; // the budget outlasted the whole run
            }
            // Sweep every boundary early (commit paths are short), then
            // coarsen.
            budget += if budget < 80 { 1 } else { 7 };
        }
        assert!(checked > 40, "{version}: only {checked} crash points swept");
    }
}

#[test]
fn halted_machine_panics_at_the_exact_store() {
    let config = EngineConfig::for_db(DB_LEN);
    let arena = dsnrep_core::shared_arena(arena_len(VersionTag::ImprovedLog, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), Rc::clone(&arena));
    m.inject_crash_after_stores(1);
    m.write(Addr::new(0), &[1], dsnrep_simcore::TrafficClass::Meta);
    let result = catch_unwind(AssertUnwindSafe(|| {
        m.write(Addr::new(8), &[2], dsnrep_simcore::TrafficClass::Meta);
    }));
    assert!(result.is_err(), "the second store must halt");
    assert_eq!(
        arena.borrow().read_vec(Addr::new(0), 1),
        vec![1],
        "first store landed"
    );
    assert_eq!(
        arena.borrow().read_vec(Addr::new(8), 1),
        vec![0],
        "second store dropped"
    );
    m.clear_fault();
    m.write(Addr::new(8), &[2], dsnrep_simcore::TrafficClass::Meta);
    assert_eq!(arena.borrow().read_vec(Addr::new(8), 1), vec![2]);
}
