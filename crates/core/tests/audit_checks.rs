//! The auditor: clean after normal operation and recovery, loud after
//! targeted corruption.

use dsnrep_core::{
    arena_len, attach_engine, audit, build_engine, EngineConfig, Machine, VersionTag,
};
use dsnrep_rio::{Layout, RootSlot};
use dsnrep_simcore::{Addr, CostModel, SplitMix64};

fn run_some(version: VersionTag, txns: u64) -> Machine {
    let config = EngineConfig::for_db(32 * 1024);
    let arena = dsnrep_core::shared_arena(arena_len(version, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
    let mut e = build_engine(version, &mut m, &config);
    let db = e.db_region();
    let mut rng = SplitMix64::new(3);
    for _ in 0..txns {
        e.begin(&mut m).unwrap();
        let len = 8 + rng.next_below(32);
        let off = rng.next_below(db.len() - len);
        e.set_range(&mut m, db.start() + off, len).unwrap();
        e.write(
            &mut m,
            db.start() + off,
            &vec![rng.next_u64() as u8; len as usize],
        )
        .unwrap();
        e.commit(&mut m).unwrap();
    }
    m
}

#[test]
fn clean_after_committed_transactions() {
    for version in VersionTag::ALL {
        let m = run_some(version, 50);
        let report =
            audit(version, &m.arena().borrow()).unwrap_or_else(|e| panic!("{version}: {e}"));
        assert_eq!(report.committed_seq, 50, "{version}");
        assert!(
            !report.in_flight,
            "{version}: idle arena reported in-flight"
        );
    }
}

#[test]
fn clean_after_crash_and_recovery() {
    for version in VersionTag::ALL {
        let config = EngineConfig::for_db(32 * 1024);
        let arena = dsnrep_core::shared_arena(arena_len(version, &config));
        let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
        let mut e = build_engine(version, &mut m, &config);
        let db = e.db_region().start();
        e.begin(&mut m).unwrap();
        e.set_range(&mut m, db, 64).unwrap();
        e.write(&mut m, db, &[7; 64]).unwrap();
        drop(e);
        m.crash();
        // Mid-transaction the audit may see in-flight structures but no
        // violations.
        let pre = audit(version, &m.arena().borrow()).unwrap_or_else(|e| panic!("{version}: {e}"));
        assert!(
            pre.in_flight || matches!(version, VersionTag::MirrorCopy | VersionTag::MirrorDiff),
            "{version}: expected in-flight structures before recovery"
        );
        let mut e = attach_engine(version, &mut m);
        e.recover(&mut m);
        let post = audit(version, &m.arena().borrow()).unwrap_or_else(|e| panic!("{version}: {e}"));
        assert!(
            !post.in_flight,
            "{version}: recovery must quiesce the arena"
        );
    }
}

#[test]
fn detects_an_out_of_bounds_undo_record() {
    // Corrupt a V3 log header to point outside the database.
    let config = EngineConfig::for_db(32 * 1024);
    let arena = dsnrep_core::shared_arena(arena_len(VersionTag::ImprovedLog, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
    let mut e = build_engine(VersionTag::ImprovedLog, &mut m, &config);
    let db = e.db_region().start();
    e.begin(&mut m).unwrap();
    e.set_range(&mut m, db, 32).unwrap();
    e.write(&mut m, db, &[1; 32]).unwrap();
    // Mid-transaction: rewrite the first header's base offset to absurdity.
    let layout = Layout::read(&m.arena().borrow()).unwrap();
    let log = layout.expect_region(dsnrep_rio::RegionId::UndoLog);
    let word = m.arena().borrow().read_u64(log.start());
    m.arena()
        .borrow_mut()
        .write_u64(log.start(), word | 0xFFFF_0000);
    let err = audit(VersionTag::ImprovedLog, &m.arena().borrow()).unwrap_err();
    assert!(err.message().contains("outside the database"), "{err}");
}

#[test]
fn detects_a_diverged_mirror() {
    let m = run_some(VersionTag::MirrorCopy, 20);
    // Flip one mirror byte while idle.
    let layout = Layout::read(&m.arena().borrow()).unwrap();
    let mirror = layout.expect_region(dsnrep_rio::RegionId::Mirror);
    let mut byte = m.arena().borrow().read_vec(mirror.start() + 100, 1);
    byte[0] ^= 0xFF;
    m.arena().borrow_mut().write(mirror.start() + 100, &byte);
    let err = audit(VersionTag::MirrorCopy, &m.arena().borrow()).unwrap_err();
    assert!(err.message().contains("mirror diverges"), "{err}");
}

#[test]
fn detects_a_corrupted_heap() {
    let m = run_some(VersionTag::Vista, 20);
    let layout = Layout::read(&m.arena().borrow()).unwrap();
    let heap = layout.expect_region(dsnrep_rio::RegionId::Heap);
    // Smash a boundary tag in the middle of the heap.
    m.arena().borrow_mut().write_u64(heap.start() + 64, 3);
    let err = audit(VersionTag::Vista, &m.arena().borrow()).unwrap_err();
    assert!(err.message().contains("heap"), "{err}");
}

#[test]
fn detects_an_unparseable_layout() {
    let arena = dsnrep_core::shared_arena(8192);
    arena.borrow_mut().write_u64(Addr::new(0), 0xBAD);
    let err = audit(VersionTag::ImprovedLog, &arena.borrow()).unwrap_err();
    assert!(err.message().contains("layout"), "{err}");
    // Root slots are part of the documented header; sanity-check one.
    assert!(Layout::root_addr(RootSlot::TxnSeq).as_u64() < 4096);
}
