//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so this in-tree shim
//! provides the surface the workspace's benches use: [`Criterion`],
//! `bench_function`, `benchmark_group` / `finish`, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. It runs
//! a fixed-budget timing loop and prints a mean ns/iter line per
//! benchmark — no statistics, plots, or baselines.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and discover a batch size that keeps clock reads
        // off the hot path.
        let warm_start = Instant::now();
        let mut batch = 1u64;
        while warm_start.elapsed() < self.warm_up {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }

        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters as f64;
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(60),
            measure: Duration::from_millis(240),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean_ns: f64::NAN,
            warm_up: self.warm_up,
            measure: self.measure,
        };
        f(&mut b);
        println!("{:<40} {:>12.1} ns/iter", id.into(), b.mean_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = tiny();
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function(format!("{}", 1), |b| {
            b.iter(|| {
                ran = true;
            })
        });
        group.finish();
        assert!(ran);
    }

    criterion_group!(sample_group, sample_target);

    fn sample_target(c: &mut Criterion) {
        c.bench_function("macro_target", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        sample_group();
    }
}
