//! N-node acceptance: exhaustive single-fault sweeps and partition
//! campaigns for the chain and quorum drivers at RF = 3, checked against
//! the shadow oracle with the 2-safe invariant
//! `committed <= recovered <= committed + 1`.

use dsnrep_core::VersionTag;
use dsnrep_faultsim::{
    execute, exhaustive_single_fault, partition_campaign, random_campaign, silence_fault_panics,
    Campaign, FaultPlan, Mutation, Scenario,
};
use dsnrep_workloads::WorkloadKind;

fn assert_clean(campaign: &Campaign) {
    assert!(
        campaign.clean(),
        "campaign found counterexamples:\n{}",
        campaign
            .counterexamples
            .iter()
            .map(|c| format!(
                "  plan `{}` shrunk to `{}`: {}",
                c.original, c.shrunk, c.shrunk_violation
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn chain_rf3(version: VersionTag) -> Scenario {
    Scenario::chain(version, WorkloadKind::DebitCredit, 3)
}

fn quorum_rf3(version: VersionTag) -> Scenario {
    Scenario::quorum(version, WorkloadKind::DebitCredit, 3, 2, 2)
}

#[test]
fn exhaustive_sweep_chain_rf3_v3() {
    silence_fault_panics();
    let campaign = exhaustive_single_fault(&chain_rf3(VersionTag::ImprovedLog), None).unwrap();
    assert_clean(&campaign);
    assert!(campaign.store_sites > 0);
    assert!(campaign.packet_sites > 0);
    // No recovery_sites assertion: the 2-safe head drains the link
    // between transactions, so the deepest store-boundary crash can land
    // before the in-flight undo head was delivered — a 0-write recovery.
}

#[test]
fn exhaustive_sweep_chain_rf3_v1() {
    silence_fault_panics();
    let campaign = exhaustive_single_fault(&chain_rf3(VersionTag::MirrorCopy), None).unwrap();
    assert_clean(&campaign);
}

#[test]
fn exhaustive_sweep_quorum_rf3_v3() {
    silence_fault_panics();
    let campaign = exhaustive_single_fault(&quorum_rf3(VersionTag::ImprovedLog), None).unwrap();
    assert_clean(&campaign);
    assert!(campaign.store_sites > 0);
    assert!(campaign.packet_sites > 0);
}

#[test]
fn partition_campaign_chain_rf3_is_clean_and_degrades() {
    silence_fault_panics();
    let scenario = chain_rf3(VersionTag::ImprovedLog).with_txns(6);
    let campaign = partition_campaign(&scenario, 0xFACADE, 24, None).unwrap();
    assert_clean(&campaign);
    assert_eq!(campaign.partition_faults, 24, "every plan must partition");
    assert!(
        campaign.degraded_commits > 0,
        "dropping a chain hop must produce degraded commits somewhere in 24 plans"
    );
}

#[test]
fn partition_campaign_quorum_rf3_is_clean() {
    silence_fault_panics();
    let scenario = quorum_rf3(VersionTag::ImprovedLog).with_txns(6);
    let campaign = partition_campaign(&scenario, 0x5EED, 24, None).unwrap();
    assert_clean(&campaign);
    assert_eq!(campaign.partition_faults, 24);
}

#[test]
fn partition_campaigns_replay_identically_from_a_seed() {
    silence_fault_panics();
    let scenario = quorum_rf3(VersionTag::ImprovedLog);
    let a = partition_campaign(&scenario, 0xAB, 10, None).unwrap();
    let b = partition_campaign(&scenario, 0xAB, 10, None).unwrap();
    assert_eq!(a, b, "same seed must reproduce the same campaign");
}

#[test]
fn random_multi_fault_campaigns_cover_partitions() {
    silence_fault_panics();
    let campaign = random_campaign(&chain_rf3(VersionTag::ImprovedLog), 0xC4A1, 32, None).unwrap();
    assert_clean(&campaign);
    assert!(
        campaign.partition_faults > 0,
        "a 32-plan chain campaign should roll at least one partition event"
    );
}

#[test]
fn planted_recovery_bug_is_caught_on_the_chain_driver() {
    silence_fault_panics();
    let scenario = chain_rf3(VersionTag::ImprovedLog).with_txns(2);
    let campaign = exhaustive_single_fault(&scenario, Some(Mutation::ScribbleCommitted)).unwrap();
    assert!(
        !campaign.clean(),
        "the planted bug must surface through a chain takeover"
    );
}

#[test]
fn partition_plans_on_unmodeled_pairs_are_rejected() {
    silence_fault_panics();
    // The chain at RF=3 moves packets over 1->2 and 2->0; 0->2 is a
    // quorum-only leg.
    let plan: FaultPlan = "partition 0->2 drop after=1".parse().unwrap();
    let err = execute(&chain_rf3(VersionTag::ImprovedLog), &plan).unwrap_err();
    assert!(err.message().contains("never moves packets"), "{err}");
    // The same plan is valid for the quorum driver...
    let ok = execute(&quorum_rf3(VersionTag::ImprovedLog), &plan).unwrap();
    assert!(ok.violation.is_none(), "{}", ok.violation.unwrap());
    // ...and partitions are rejected outright on the pair drivers.
    let err = execute(
        &Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit),
        &plan,
    )
    .unwrap_err();
    assert!(err.message().contains("multi-link fabric"), "{err}");
}

#[test]
fn graceful_partitioned_run_keeps_node1_exact() {
    silence_fault_panics();
    // No crash at all: W=3 needs both replica acks, so the starved head
    // times out every transaction — yet node 1's image stays
    // oracle-exact and nothing is lost.
    let scenario = Scenario::quorum(VersionTag::ImprovedLog, WorkloadKind::DebitCredit, 3, 1, 3);
    let plan: FaultPlan = "partition 0->2 drop after=0".parse().unwrap();
    let outcome = execute(&scenario, &plan).unwrap();
    assert!(
        outcome.violation.is_none(),
        "{}",
        outcome.violation.unwrap()
    );
    assert_eq!(outcome.recovered, outcome.committed);
    assert_eq!(outcome.degraded, outcome.committed, "every commit degraded");
}
