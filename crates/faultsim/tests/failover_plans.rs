//! Hand-picked failover cases on the FaultPlan DSL.
//!
//! These port the scenarios that `crates/repl/tests/failover_props.rs`
//! used to cover with a private proptest harness: passive failover at
//! arbitrary crash points for every engine version, active failover in
//! 1-safe and 2-safe modes, plus heartbeat distortion and double-fault
//! schedules the old harness could not express. All invariant checking
//! (loss bound, torn-tail containment, byte-exactness) now lives in the
//! shared executor instead of being duplicated per test file.

use dsnrep_core::VersionTag;
use dsnrep_faultsim::{
    execute, random_campaign, silence_fault_panics, FaultPlan, Outcome, Scenario,
};
use dsnrep_workloads::WorkloadKind;

fn run(scenario: &Scenario, plan: &str) -> Outcome {
    silence_fault_panics();
    let plan: FaultPlan = plan.parse().unwrap();
    let outcome = execute(scenario, &plan).unwrap();
    assert!(
        outcome.violation.is_none(),
        "plan `{plan}` on {scenario}: {}",
        outcome.violation.clone().unwrap()
    );
    outcome
}

#[test]
fn passive_failover_mid_transaction_every_version() {
    for version in VersionTag::ALL {
        let scenario = Scenario::passive(version, WorkloadKind::DebitCredit);
        // Crash deep inside the third transaction's store stream.
        let outcome = run(&scenario, "crash primary @ store=37");
        assert!(outcome.faults_fired >= 1, "the crash never fired");
        assert!(
            outcome.recovered <= outcome.committed + 1,
            "backup recovered {} of {} committed",
            outcome.recovered,
            outcome.committed
        );
    }
}

#[test]
fn passive_failover_at_transaction_boundaries() {
    for version in VersionTag::ALL {
        let scenario = Scenario::passive(version, WorkloadKind::DebitCredit);
        for t in [0u64, 2, 4] {
            let outcome = run(&scenario, &format!("crash primary @ txn={t}"));
            assert!(outcome.recovered <= scenario.txns + 1);
        }
    }
}

#[test]
fn passive_failover_on_a_packet_boundary() {
    let scenario = Scenario::passive(VersionTag::MirrorDiff, WorkloadKind::DebitCredit);
    let outcome = run(&scenario, "crash primary @ packet=3");
    assert!(outcome.faults_fired >= 1);
    assert!(outcome.packets >= 3, "fewer packets than the crash site");
}

#[test]
fn active_failover_is_byte_exact_one_safe() {
    let scenario = Scenario::active(WorkloadKind::DebitCredit).with_txns(6);
    // Byte-exactness is enforced by the executor's oracle check; 1-safe
    // may lose in-flight tail transactions but never diverge.
    let outcome = run(&scenario, "crash primary @ store=51");
    assert!(outcome.recovered <= outcome.committed + 1);
}

#[test]
fn active_failover_two_safe_loses_nothing() {
    let scenario = Scenario::active(WorkloadKind::DebitCredit)
        .with_txns(6)
        .two_safe();
    let outcome = run(&scenario, "crash primary @ txn=4");
    // The executor asserts recovered >= committed for 2-safe runs; pin
    // the stronger equality here for the boundary crash.
    assert_eq!(outcome.recovered, outcome.committed);
}

#[test]
fn heartbeat_delay_stretches_the_outage() {
    // The run must outlive several 1 ms heartbeat periods, or the crash
    // precedes the first beat and a delivery delay has nothing to act on.
    let scenario =
        Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit).with_txns(300);
    let baseline = run(&scenario, "crash primary @ txn=280");
    let delayed = run(
        &scenario,
        "crash primary @ txn=280; delay heartbeats=250000000000ps",
    );
    let (a, b) = (
        baseline.outage_ps.expect("failover records an outage"),
        delayed.outage_ps.expect("failover records an outage"),
    );
    assert!(
        b >= a + 250_000_000_000,
        "a 250 ms heartbeat delay must stretch the outage: {a} -> {b}"
    );
}

#[test]
fn dropped_heartbeats_still_converge_to_takeover() {
    let scenario = Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit);
    let outcome = run(&scenario, "crash primary @ txn=2; drop heartbeats after=1");
    assert!(outcome.outage_ps.is_some());
}

#[test]
fn double_fault_crash_during_recovery_recovers_on_retry() {
    // A recovery that performs no arena writes (a logging version caught
    // exactly at a boundary) cannot trip a write budget, so the strict
    // both-faults assertion is conditional; the aggregate check pins that
    // the double fault genuinely fires somewhere (the mirror versions'
    // whole-mirror restore always writes).
    let mut both_fired = 0;
    for version in VersionTag::ALL {
        let scenario = Scenario::passive(version, WorkloadKind::DebitCredit);
        let outcome = run(
            &scenario,
            "crash primary @ store=40; crash backup @ recovery-write=0",
        );
        assert!(
            outcome.faults_fired >= 1,
            "{scenario}: the crash never fired"
        );
        if outcome.recovery_writes > 0 {
            assert!(
                outcome.faults_fired >= 2,
                "{}: recovery wrote {} times yet the armed budget never fired",
                scenario,
                outcome.recovery_writes
            );
        }
        if outcome.faults_fired >= 2 {
            both_fired += 1;
        }
    }
    assert!(
        both_fired >= 2,
        "the mid-recovery crash should fire for at least the mirror versions (fired for {both_fired})"
    );
}

#[test]
fn triple_fault_sequence_parses_and_recovers() {
    let scenario = Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit);
    let outcome = run(
        &scenario,
        "crash primary @ packet=9; crash backup @ recovery-write=1; \
         crash backup @ recovery-write=3; delay heartbeats=1000000ps",
    );
    assert!(outcome.faults_fired >= 2);
}

#[test]
fn longer_random_passive_campaign_stays_clean() {
    silence_fault_panics();
    // The old proptest harness sampled run lengths up to 250 txns; a
    // 24-txn random campaign keeps that long-run coverage affordable.
    let scenario = Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit)
        .with_txns(24)
        .with_seed(0x5EED);
    let campaign = random_campaign(&scenario, 42, 16, None).unwrap();
    assert!(
        campaign.clean(),
        "counterexamples: {:#?}",
        campaign.counterexamples
    );
    assert_eq!(campaign.plans_run, 16);
}
