//! Tentpole acceptance: exhaustive single-fault sweeps over every
//! engine x driver combination, a planted recovery bug that must be
//! caught and shrunk, and bit-determinism of campaigns.
//!
//! These tests replace the hand-rolled store-boundary sweep that used to
//! live in `crates/core/tests/mid_commit_crashes.rs` — the FaultPlan
//! explorer covers the same boundaries (and more) through the shadow
//! oracle instead of a private reference harness.

use dsnrep_core::VersionTag;
use dsnrep_faultsim::{
    execute, exhaustive_single_fault, random_campaign, silence_fault_panics, Campaign, Mutation,
    Scenario,
};
use dsnrep_workloads::WorkloadKind;

fn assert_clean(campaign: &Campaign) {
    assert!(
        campaign.clean(),
        "campaign found counterexamples:\n{}",
        campaign
            .counterexamples
            .iter()
            .map(|c| format!(
                "  plan `{}` shrunk to `{}`: {}",
                c.original, c.shrunk, c.shrunk_violation
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn sweep_standalone(version: VersionTag) {
    silence_fault_panics();
    let scenario = Scenario::standalone(version, WorkloadKind::DebitCredit);
    let campaign = exhaustive_single_fault(&scenario, None).unwrap();
    assert_clean(&campaign);
    // The sweep must actually cover store boundaries and recovery steps;
    // 40 matches the floor of the hand-rolled sweep this test replaces.
    assert!(
        campaign.store_sites > 40,
        "too few store boundaries swept: {}",
        campaign.store_sites
    );
    assert!(campaign.recovery_sites > 0, "no mid-recovery crashes swept");
    assert!(campaign.faults_fired > 0);
}

fn sweep_passive(version: VersionTag) {
    silence_fault_panics();
    let scenario = Scenario::passive(version, WorkloadKind::DebitCredit);
    let campaign = exhaustive_single_fault(&scenario, None).unwrap();
    assert_clean(&campaign);
    assert!(
        campaign.packet_sites > 0,
        "a clustered sweep must cover SAN packet boundaries"
    );
    assert!(campaign.store_sites > 0);
    assert!(campaign.recovery_sites > 0, "no mid-recovery crashes swept");
}

// Every engine version x {standalone, passive} — the 8 combinations the
// acceptance sweep requires — split into separate tests so the harness
// runs them in parallel.

#[test]
fn exhaustive_sweep_standalone_v0() {
    sweep_standalone(VersionTag::Vista);
}

#[test]
fn exhaustive_sweep_standalone_v1() {
    sweep_standalone(VersionTag::MirrorCopy);
}

#[test]
fn exhaustive_sweep_standalone_v2() {
    sweep_standalone(VersionTag::MirrorDiff);
}

#[test]
fn exhaustive_sweep_standalone_v3() {
    sweep_standalone(VersionTag::ImprovedLog);
}

#[test]
fn exhaustive_sweep_passive_v0() {
    sweep_passive(VersionTag::Vista);
}

#[test]
fn exhaustive_sweep_passive_v1() {
    sweep_passive(VersionTag::MirrorCopy);
}

#[test]
fn exhaustive_sweep_passive_v2() {
    sweep_passive(VersionTag::MirrorDiff);
}

#[test]
fn exhaustive_sweep_passive_v3() {
    sweep_passive(VersionTag::ImprovedLog);
}

#[test]
fn exhaustive_sweep_active_one_safe() {
    silence_fault_panics();
    let scenario = Scenario::active(WorkloadKind::DebitCredit);
    let campaign = exhaustive_single_fault(&scenario, None).unwrap();
    assert_clean(&campaign);
    assert!(campaign.packet_sites > 0);
}

#[test]
fn exhaustive_sweep_active_two_safe() {
    silence_fault_panics();
    let scenario = Scenario::active(WorkloadKind::DebitCredit).two_safe();
    let campaign = exhaustive_single_fault(&scenario, None).unwrap();
    assert_clean(&campaign);
}

#[test]
fn exhaustive_sweep_passive_order_entry() {
    silence_fault_panics();
    // OrderEntry needs a 1 MiB database; two transactions keep the sweep
    // affordable while still crossing multi-record commit boundaries.
    let scenario =
        Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::OrderEntry).with_txns(2);
    let campaign = exhaustive_single_fault(&scenario, None).unwrap();
    assert_clean(&campaign);
    assert!(campaign.store_sites > 0);
}

#[test]
fn planted_recovery_bug_is_caught_and_shrunk_standalone() {
    silence_fault_panics();
    let scenario =
        Scenario::standalone(VersionTag::ImprovedLog, WorkloadKind::DebitCredit).with_txns(2);
    let campaign = exhaustive_single_fault(&scenario, Some(Mutation::SkipUndoChain)).unwrap();
    assert!(
        !campaign.clean(),
        "a recovery that skips the undo chain must fail the sweep"
    );
    for c in &campaign.counterexamples {
        assert!(
            c.shrunk.events().len() <= 3,
            "shrunk plan `{}` still has {} events",
            c.shrunk,
            c.shrunk.events().len()
        );
        assert!(
            c.regression_test.contains("#[test]")
                && c.regression_test.contains(&format!("\"{}\"", c.shrunk)),
            "regression snippet must embed the shrunk plan:\n{}",
            c.regression_test
        );
        // The shrunk plan's text form must round-trip through the DSL.
        let reparsed: dsnrep_faultsim::FaultPlan = c.shrunk.to_string().parse().unwrap();
        assert_eq!(reparsed, c.shrunk);
    }
}

#[test]
fn planted_recovery_bug_is_caught_passive() {
    silence_fault_panics();
    // SkipUndoChain is legitimately invisible to a 1-safe failover (its
    // torn window covers the unrolled bytes), so the passive planted bug
    // scribbles over *committed* data instead — no window explains that.
    let scenario =
        Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit).with_txns(2);
    let campaign = exhaustive_single_fault(&scenario, Some(Mutation::ScribbleCommitted)).unwrap();
    assert!(
        !campaign.clean(),
        "the planted bug must also surface through a passive takeover"
    );
    assert!(campaign
        .counterexamples
        .iter()
        .all(|c| c.shrunk.events().len() <= 3));
}

#[test]
fn same_seed_same_plan_is_bit_deterministic() {
    silence_fault_panics();
    let scenario = Scenario::passive(VersionTag::MirrorDiff, WorkloadKind::DebitCredit);
    let plan: dsnrep_faultsim::FaultPlan =
        "crash primary @ packet=5; crash backup @ recovery-write=9"
            .parse()
            .unwrap();
    let a = execute(&scenario, &plan).unwrap();
    let b = execute(&scenario, &plan).unwrap();
    assert_eq!(a, b, "two replays of the same plan diverged");
    assert!(a.violation.is_none(), "{}", a.violation.unwrap());
}

#[test]
fn random_campaigns_replay_identically_from_a_seed() {
    silence_fault_panics();
    let scenario = Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit);
    let a = random_campaign(&scenario, 0xC0FFEE, 12, None).unwrap();
    let b = random_campaign(&scenario, 0xC0FFEE, 12, None).unwrap();
    assert_eq!(a, b, "same seed must reproduce the same campaign");
    assert_clean(&a);
    // A different seed explores different schedules (faults fired or
    // coverage counters differ with overwhelming probability).
    let c = random_campaign(&scenario, 0xBEEF, 12, None).unwrap();
    assert_clean(&c);
    assert_ne!(
        (a.faults_fired, a.store_sites, a.packet_sites, a.txn_sites),
        (c.faults_fired, c.store_sites, c.packet_sites, c.txn_sites),
        "different seeds produced identical exploration traces"
    );
}

#[test]
fn random_multi_fault_campaign_active_is_clean() {
    silence_fault_panics();
    let scenario = Scenario::active(WorkloadKind::DebitCredit).with_txns(8);
    let campaign = random_campaign(&scenario, 0xD15EA5E, 24, None).unwrap();
    assert_clean(&campaign);
    assert!(campaign.plans_run == 24);
}
