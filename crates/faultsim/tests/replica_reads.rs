//! Read-path oracle checks for the N-node replica set: replica reads
//! never observe uncommitted state, and a client's reads stay monotonic
//! across a head crash and takeover.
//!
//! The takeover case is regression-style: the crash boundary comes from an
//! embedded, already-shrunk [`FaultPlan`] literal, and the same plan is
//! replayed through the faultsim executor so the full invariant suite
//! (loss bound, torn-tail containment) runs alongside the read checks.

use dsnrep_cluster::{ReplicationStrategy, Topology};
use dsnrep_core::{EngineConfig, VersionTag};
use dsnrep_faultsim::{execute, silence_fault_panics, FaultPlan, FaultSite, Scenario};
use dsnrep_repl::ReplicaSet;
use dsnrep_simcore::{CostModel, VirtualDuration, VirtualInstant, MIB};
use dsnrep_workloads::{Workload, WorkloadKind};

/// The shrunk counterexample-shaped schedule the monotonicity regression
/// replays: crash the head on the quiet boundary after the third commit.
/// (Boundary crashes maximize the committed prefix a client could already
/// have observed, which is exactly what monotonic reads stress.)
const SHRUNK_PLAN: &str = "crash primary @ txn=3";

fn build_set(topology: Topology) -> ReplicaSet {
    let config = EngineConfig::for_db(MIB);
    ReplicaSet::new(
        CostModel::alpha_21164a(),
        VersionTag::ImprovedLog,
        &config,
        topology,
    )
}

fn replicated_topologies() -> Vec<Topology> {
    vec![
        Topology::new(3, ReplicationStrategy::Chain).expect("rf 3 chain"),
        Topology::new(5, ReplicationStrategy::Chain).expect("rf 5 chain"),
        Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 2 }).expect("rf 3 quorum"),
        Topology::new(5, ReplicationStrategy::Quorum { read: 3, write: 3 }).expect("rf 5 quorum"),
    ]
}

/// Tail and R-quorum reads may lag the coordinator but must never run
/// ahead of it: whatever prefix a read observes was committed at (or
/// before) the read's own virtual instant. Sweeps read instants across
/// every commit boundary, including instants *before* the first commit
/// and mid-propagation instants right at commit time.
#[test]
fn replica_reads_never_observe_uncommitted_values() {
    for topology in replicated_topologies() {
        let mut set = build_set(topology);
        let mut workload: Box<dyn Workload> =
            WorkloadKind::DebitCredit.build(set.engine().db_region(), 7);
        let mut saw_boundary_effect = false;
        // A read before anything committed observes the empty prefix.
        let early = set.serve_read(VirtualInstant::EPOCH);
        assert_eq!(early.seq, 0, "{topology}: nothing is committed yet");
        for _ in 0..20 {
            set.run_txn(workload.as_mut());
            let commit = set.machine().now();
            // Just before, exactly at, and progressively after the
            // commit: propagation down the chain / across the fabric
            // makes the tight offsets the interesting ones.
            let offsets_picos = [0u64, 1, 50_000, 500_000, 5_000_000, 50_000_000];
            let before = VirtualInstant::from_picos(commit.as_picos().saturating_sub(1_000));
            let mut instants = vec![before, commit];
            instants.extend(
                offsets_picos
                    .iter()
                    .map(|&off| commit + VirtualDuration::from_picos(off)),
            );
            let committed_now = set.committed_at(set.machine().now());
            for at in instants {
                let committed = set.committed_at(at);
                let sample = set.serve_read(at);
                // Nothing beyond the durably committed prefix, ever: a
                // replica copy can hold the *one* transaction the head is
                // mid-commit on (receipt precedes the commit declaration
                // travelling back), but never a value that did not
                // commit, and never more than that single in-flight
                // transaction early.
                assert!(
                    sample.seq <= committed_now,
                    "{topology}: read at {} ps observed prefix {} beyond the {} \
                     durably committed",
                    at.as_picos(),
                    sample.seq,
                    committed_now
                );
                assert!(
                    sample.seq <= committed + 1,
                    "{topology}: read at {} ps observed prefix {} with only {} \
                     committed at that instant",
                    at.as_picos(),
                    sample.seq,
                    committed
                );
                assert_eq!(
                    sample.staleness,
                    committed.saturating_sub(sample.seq),
                    "{topology}: staleness must be the commit-prefix gap"
                );
                assert!(
                    sample.completed > sample.at,
                    "{topology}: service is not free"
                );
                if sample.seq != committed {
                    saw_boundary_effect = true;
                }
            }
        }
        if matches!(topology.strategy(), ReplicationStrategy::Chain) {
            // The chain head stalls until the tail's acknowledgement, so
            // the tail holds each transaction *before* the head declares
            // it committed: the pre-commit instant must observe the
            // in-flight transaction at least once, or the sweep never
            // actually straddled a commit boundary.
            assert!(
                saw_boundary_effect,
                "{topology}: no read ever straddled a commit boundary — the \
                 sweep is toothless"
            );
        }
    }
}

/// A single client's reads never go backwards across a takeover: the
/// promoted node serves a prefix at least as long as anything the client
/// observed before the crash.
///
/// Scoped to the 2-safe strategies. 1-safe primary-backup ships its log
/// asynchronously and is *allowed* to lose a tail window at failover —
/// that regression is the paper's 1-safe tradeoff, not a bug, so it is
/// deliberately outside this invariant.
#[test]
fn client_reads_stay_monotonic_across_a_takeover() {
    let plan: FaultPlan = SHRUNK_PLAN.parse().expect("embedded plan parses");
    let Some(FaultSite::Txn(crash_after)) = plan.primary_crash() else {
        panic!("the embedded plan names a txn-boundary crash");
    };
    let topologies = vec![
        Topology::new(3, ReplicationStrategy::Chain).expect("rf 3 chain"),
        Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 2 }).expect("rf 3 quorum"),
    ];
    for topology in topologies {
        let mut set = build_set(topology);
        let mut workload: Box<dyn Workload> =
            WorkloadKind::DebitCredit.build(set.engine().db_region(), 7);
        // One client: a read settles after every commit. The +10 us
        // offset lets propagation land so the client sees a nontrivial
        // prefix (a zero-prefix read would make monotonicity vacuous).
        let mut observed: Vec<u64> = Vec::new();
        for _ in 0..crash_after {
            set.run_txn(workload.as_mut());
            let at = set.machine().now() + VirtualDuration::from_micros(10);
            observed.push(set.serve_read(at).seq);
        }
        assert!(
            observed.windows(2).all(|w| w[0] <= w[1]),
            "{topology}: pre-crash reads regressed: {observed:?}"
        );
        let last_read = *observed.last().expect("the client read at least once");
        assert!(last_read > 0, "{topology}: the client must observe commits");

        let takeover = set.begin_takeover();
        let mut failover = takeover.takeover.recover();
        let recovered = failover.engine.committed_seq(&mut failover.machine);
        assert!(
            recovered >= last_read,
            "{topology}: the promoted node serves prefix {recovered} but the \
             client already observed {last_read}"
        );
        // The client keeps reading from the promoted primary; its
        // sequence must keep growing through post-takeover commits.
        let mut workload: Box<dyn Workload> =
            WorkloadKind::DebitCredit.build(failover.engine.db_region(), 7);
        let mut previous = recovered;
        for _ in 0..3 {
            failover.run_txn(workload.as_mut());
            let seq = failover.engine.committed_seq(&mut failover.machine);
            assert!(
                seq >= previous,
                "{topology}: post-takeover reads regressed from {previous} to {seq}"
            );
            previous = seq;
        }
    }

    // Replay the same embedded plan through the executor so the full
    // invariant suite (loss bound, torn-tail containment) runs on the
    // exact schedule the read checks used.
    silence_fault_panics();
    for scenario in [
        Scenario::chain(VersionTag::ImprovedLog, WorkloadKind::DebitCredit, 3),
        Scenario::quorum(VersionTag::ImprovedLog, WorkloadKind::DebitCredit, 3, 2, 2),
    ] {
        let outcome = execute(&scenario, &plan).expect("the embedded plan executes");
        assert!(
            outcome.violation.is_none(),
            "plan `{plan}` on {scenario}: {}",
            outcome.violation.clone().expect("checked above")
        );
        assert!(outcome.committed >= crash_after);
        // 2-safety is what makes client reads monotonic: the promoted
        // node recovers at least everything that committed.
        assert!(outcome.recovered >= outcome.committed);
    }
}
