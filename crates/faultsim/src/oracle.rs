//! The shadow oracle a faulted run is checked against.
//!
//! One fault-free Version 3 run with a [`ShadowDb`] mirror produces, for
//! a given (workload, seed, db size, length), the committed database
//! image after every transaction boundary plus the write spans of each
//! transaction. Because [`ShadowDb`] records everything **region
//! relative**, the same reference serves every engine version and every
//! driver: each faulted run is compared against the reference at its own
//! recovered sequence number, reading its own database region.

use dsnrep_core::{build_engine, shared_arena, Machine, ShadowDb, VersionTag};
use dsnrep_simcore::CostModel;
use dsnrep_workloads::TxCtx;

use crate::scenario::Scenario;

/// How many transactions past a crash boundary can be torn (1-safe
/// passive replication loses at most the in-flight SAN tail; 8 covers it
/// with margin at these run lengths).
pub const TAIL_WINDOW: u64 = 8;

/// The precomputed fault-free truth for one scenario shape.
#[derive(Clone, Debug)]
pub struct Reference {
    /// `images[s]` is the committed database image after `s` transactions.
    images: Vec<Vec<u8>>,
    /// `txn_spans[i]` holds the region-relative torn window (declared
    /// undo ranges plus written spans) of the (1-based) transaction
    /// `i + 1`; extends `TAIL_WINDOW` past `txns`.
    txn_spans: Vec<Vec<(u64, u64)>>,
}

impl Reference {
    /// Runs the fault-free reference for `scenario` (always Version 3
    /// standalone — the shadow equivalence tests pin all versions to the
    /// same logical history).
    pub fn build(scenario: &Scenario) -> Self {
        let config = dsnrep_core::EngineConfig::for_db(scenario.db_len);
        let arena = shared_arena(dsnrep_core::arena_len(VersionTag::ImprovedLog, &config));
        let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
        let mut engine = build_engine(VersionTag::ImprovedLog, &mut m, &config);
        let db = engine.db_region();
        let mut shadow = ShadowDb::new(db);
        let mut workload = scenario.workload.build(db, scenario.seed);

        let mut images = Vec::with_capacity(scenario.txns as usize + 1);
        images.push(shadow.committed().to_vec());
        let mut txn_spans = Vec::with_capacity((scenario.txns + TAIL_WINDOW) as usize);
        for i in 0..scenario.txns + TAIL_WINDOW {
            let mut ctx = TxCtx::new(&mut m, engine.as_mut()).with_shadow(&mut shadow);
            workload
                .run_txn(&mut ctx)
                .expect("the fault-free reference run cannot fail");
            // The torn window of a transaction is its declared undo
            // ranges, not just its written spans: a 1-safe backup's
            // rollback restores whole declared ranges, possibly from a
            // torn undo image (the record header publishes atomically
            // over the SAN, its data blocks may still be in write
            // buffers). Keep the written spans too — ranges cover them
            // by construction, but the union is cheap insurance.
            let mut window = shadow.last_txn_ranges().to_vec();
            window.extend_from_slice(shadow.last_txn_spans());
            txn_spans.push(window);
            if i < scenario.txns {
                images.push(shadow.committed().to_vec());
            }
        }
        // The shadow is the truth the images came from; the engine that
        // produced them must agree with it at the final boundary.
        debug_assert!(
            shadow.matches(&m.arena().borrow()),
            "the reference engine diverged from its own shadow"
        );
        Reference { images, txn_spans }
    }

    /// Transactions the reference covers (a recovered sequence must not
    /// exceed this).
    pub fn txns(&self) -> u64 {
        self.images.len() as u64 - 1
    }

    /// The committed image after `seq` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds [`Reference::txns`] (callers check the
    /// sequence invariant first).
    pub fn image(&self, seq: u64) -> &[u8] {
        &self.images[seq as usize]
    }

    /// Region-relative spans a 1-safe backup at boundary `seq` may
    /// expose torn bytes in: the declared undo ranges and written spans
    /// of transactions `seq + 1` through `seq + TAIL_WINDOW` (partially
    /// applied in-flight writes, or rollback over a torn undo image).
    pub fn tail_spans(&self, seq: u64) -> Vec<(u64, u64)> {
        let from = seq as usize;
        let to = ((seq + TAIL_WINDOW) as usize).min(self.txn_spans.len());
        self.txn_spans[from..to].iter().flatten().copied().collect()
    }

    /// Compares `actual` (a database region read, region-relative) against
    /// the committed image at `seq`. With `allow_torn_tail`, bytes inside
    /// [`Reference::tail_spans`] may differ (partially applied in-flight
    /// writes); everything else must match exactly. Returns the
    /// region-relative offset of the first unexplained mismatch.
    pub fn first_unexplained_mismatch(
        &self,
        seq: u64,
        actual: &[u8],
        allow_torn_tail: bool,
    ) -> Option<u64> {
        let expect = self.image(seq);
        assert_eq!(
            expect.len(),
            actual.len(),
            "oracle and run disagree on the database size"
        );
        let mut torn = vec![false; expect.len()];
        if allow_torn_tail {
            for (off, len) in self.tail_spans(seq) {
                for b in off..off + len {
                    torn[b as usize] = true;
                }
            }
        }
        (0..expect.len())
            .find(|&i| expect[i] != actual[i] && !torn[i])
            .map(|i| i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnrep_workloads::WorkloadKind;

    #[test]
    fn the_reference_is_deterministic_and_sized() {
        let scenario = Scenario::standalone(VersionTag::ImprovedLog, WorkloadKind::DebitCredit);
        let a = Reference::build(&scenario);
        let b = Reference::build(&scenario);
        assert_eq!(a.txns(), scenario.txns);
        for s in 0..=scenario.txns {
            assert_eq!(a.image(s), b.image(s), "image {s} differs");
        }
        // Transactions write something, so consecutive images differ.
        assert_ne!(a.image(0), a.image(1));
    }

    #[test]
    fn mismatches_inside_the_tail_are_explained_outside_are_not() {
        let scenario = Scenario::standalone(VersionTag::ImprovedLog, WorkloadKind::DebitCredit);
        let r = Reference::build(&scenario);
        // A backup that stopped at boundary 2 but partially applied txn 3:
        // corrupt one byte inside txn 3's first span.
        let mut actual = r.image(2).to_vec();
        let spans = r.tail_spans(2);
        let (off, _) = spans[0];
        actual[off as usize] ^= 0xFF;
        assert_eq!(r.first_unexplained_mismatch(2, &actual, true), None);
        assert_eq!(r.first_unexplained_mismatch(2, &actual, false), Some(off));
        // A byte outside every tail span is never explained.
        let torn: std::collections::HashSet<u64> = r
            .tail_spans(2)
            .iter()
            .flat_map(|(o, l)| *o..*o + *l)
            .collect();
        let outside = (0..actual.len() as u64)
            .find(|b| !torn.contains(b))
            .expect("the tail does not cover the whole database");
        let mut actual = r.image(2).to_vec();
        actual[outside as usize] ^= 0xFF;
        assert_eq!(
            r.first_unexplained_mismatch(2, &actual, true),
            Some(outside)
        );
    }
}
