//! Automatic shrinking of failing fault schedules.
//!
//! Greedy fixpoint reduction: repeatedly try dropping whole events, then
//! descending each event's counter toward zero (`0`, `n/2`, `n - 1`),
//! keeping any candidate that still fails. The result is a minimal plan
//! in the sense that removing any single event, or lowering any single
//! counter by the tried steps, makes the failure disappear — small
//! enough to read, and printable as a self-contained regression test.

use crate::exec::{execute_against, Mutation, Violation};
use crate::oracle::Reference;
use crate::plan::{FaultEvent, FaultPlan, FaultSite};
use crate::scenario::Scenario;

/// What the shrinker converged to.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal failing plan.
    pub plan: FaultPlan,
    /// The violation the minimal plan produces.
    pub violation: Violation,
    /// Plan executions spent shrinking.
    pub executions: u64,
}

/// Hard cap on shrink executions: convergence is usually < 50 runs, the
/// cap only guards against a pathological oscillation.
const MAX_EXECUTIONS: u64 = 500;

fn event_counter(event: FaultEvent) -> Option<u64> {
    match event {
        FaultEvent::CrashPrimary(FaultSite::Store(n))
        | FaultEvent::CrashPrimary(FaultSite::Packet(n))
        | FaultEvent::CrashPrimary(FaultSite::Txn(n))
        | FaultEvent::CrashBackupRecoveryWrite(n)
        | FaultEvent::DelayHeartbeats(n)
        | FaultEvent::DropHeartbeatsAfter(n)
        | FaultEvent::PartitionDelay { ps: n, .. }
        | FaultEvent::PartitionDropAfter { n, .. } => Some(n),
    }
}

fn with_counter(event: FaultEvent, n: u64) -> FaultEvent {
    match event {
        FaultEvent::CrashPrimary(FaultSite::Store(_)) => {
            FaultEvent::CrashPrimary(FaultSite::Store(n))
        }
        FaultEvent::CrashPrimary(FaultSite::Packet(_)) => {
            FaultEvent::CrashPrimary(FaultSite::Packet(n))
        }
        FaultEvent::CrashPrimary(FaultSite::Txn(_)) => FaultEvent::CrashPrimary(FaultSite::Txn(n)),
        FaultEvent::CrashBackupRecoveryWrite(_) => FaultEvent::CrashBackupRecoveryWrite(n),
        FaultEvent::DelayHeartbeats(_) => FaultEvent::DelayHeartbeats(n),
        FaultEvent::DropHeartbeatsAfter(_) => FaultEvent::DropHeartbeatsAfter(n),
        FaultEvent::PartitionDelay { from, to, .. } => {
            FaultEvent::PartitionDelay { from, to, ps: n }
        }
        FaultEvent::PartitionDropAfter { from, to, .. } => {
            FaultEvent::PartitionDropAfter { from, to, n }
        }
    }
}

/// Shrinks a failing `plan` to a minimal failing plan.
///
/// The caller passes the `violation` the unshrunk plan produced; the
/// shrinker only adopts candidates that still produce *some* violation
/// (not necessarily the same one — a simpler schedule often surfaces the
/// same bug through a different invariant).
pub fn shrink(
    scenario: &Scenario,
    reference: &Reference,
    mutation: Option<Mutation>,
    plan: &FaultPlan,
    violation: Violation,
) -> ShrinkResult {
    let mut best = plan.clone();
    let mut best_violation = violation;
    let mut executions = 0u64;
    let still_fails = |candidate: &FaultPlan, executions: &mut u64| -> Option<Violation> {
        if candidate.validate().is_err() {
            return None;
        }
        if *executions >= MAX_EXECUTIONS {
            return None;
        }
        *executions += 1;
        execute_against(scenario, candidate, reference, mutation)
            .ok()
            .and_then(|outcome| outcome.violation)
    };

    'fixpoint: loop {
        // Pass 1: drop whole events.
        for i in 0..best.events().len() {
            let mut events = best.events().to_vec();
            events.remove(i);
            let candidate = FaultPlan::new(events);
            if let Some(v) = still_fails(&candidate, &mut executions) {
                best = candidate;
                best_violation = v;
                continue 'fixpoint;
            }
        }
        // Pass 2: descend counters.
        for i in 0..best.events().len() {
            let event = best.events()[i];
            let Some(n) = event_counter(event) else {
                continue;
            };
            for smaller in [0, n / 2, n.saturating_sub(1)] {
                if smaller >= n {
                    continue;
                }
                let mut events = best.events().to_vec();
                events[i] = with_counter(event, smaller);
                let candidate = FaultPlan::new(events);
                if let Some(v) = still_fails(&candidate, &mut executions) {
                    best = candidate;
                    best_violation = v;
                    continue 'fixpoint;
                }
            }
        }
        break;
    }
    ShrinkResult {
        plan: best,
        violation: best_violation,
        executions,
    }
}

/// Renders a shrunk plan as a self-contained `#[test]` a developer can
/// paste into `crates/faultsim/tests/` to pin the failure.
pub fn regression_snippet(scenario: &Scenario, plan: &FaultPlan, violation: &Violation) -> String {
    format!(
        r#"#[test]
fn shrunk_fault_plan_regression() {{
    // Shrunk counterexample; last observed violation:
    // {violation}
    use dsnrep_core::VersionTag;
    use dsnrep_faultsim::{{execute, Driver, FaultPlan, Scenario}};
    use dsnrep_workloads::WorkloadKind;

    let scenario = Scenario {{
        driver: Driver::{driver:?},
        version: VersionTag::{version:?},
        workload: WorkloadKind::{workload:?},
        txns: {txns},
        db_len: {db_len},
        seed: {seed:#x},
        two_safe: {two_safe},
        rf: {rf},
        quorum_read: {quorum_read},
        quorum_write: {quorum_write},
    }};
    let plan: FaultPlan = "{plan}".parse().unwrap();
    let outcome = execute(&scenario, &plan).unwrap();
    assert!(outcome.violation.is_none(), "{{}}", outcome.violation.unwrap());
}}
"#,
        violation = violation,
        driver = scenario.driver,
        version = scenario.version,
        workload = scenario.workload,
        txns = scenario.txns,
        db_len = scenario.db_len,
        seed = scenario.seed,
        two_safe = scenario.two_safe,
        rf = scenario.rf,
        quorum_read = scenario.quorum_read,
        quorum_write = scenario.quorum_write,
        plan = plan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_surgery_round_trips() {
        let e = FaultEvent::CrashPrimary(FaultSite::Packet(9));
        assert_eq!(event_counter(e), Some(9));
        assert_eq!(
            with_counter(e, 4),
            FaultEvent::CrashPrimary(FaultSite::Packet(4))
        );
        let d = FaultEvent::DelayHeartbeats(1000);
        assert_eq!(with_counter(d, 0), FaultEvent::DelayHeartbeats(0));
    }
}
