//! Deterministic execution of a [`FaultPlan`] against a [`Scenario`].
//!
//! The executor builds the scenario's driver from scratch, arms the
//! injection hooks the plan names (store budgets on the primary machine,
//! packet budgets on the SAN adapter, arena write budgets on the
//! recovering backup), runs the workload, catches every simulated halt,
//! and drives recovery to completion — re-entering it over the surviving
//! arena as many times as the plan crashes it. The outcome is checked
//! against the shadow [`Reference`](crate::Reference) and the recovery
//! invariants. Everything is a pure function of (scenario, plan):
//! replaying the same pair is bit-deterministic.

use std::cell::RefCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use dsnrep_cluster::{
    takeover_timeline_with_faults, HeartbeatConfig, HeartbeatFaults, NodeId, TakeoverTimeline,
    ViewManager,
};
use dsnrep_core::{arena_len, attach_engine, build_engine, Durability, EngineConfig, Machine};
use dsnrep_obs::NullTracer;
use dsnrep_repl::{
    modeled_pairs, ActiveCluster, ActiveTakeover, Failover, PassiveCluster, ReplicaSet, Takeover,
};
use dsnrep_rio::{Arena, Layout, RegionId};
use dsnrep_simcore::{CostModel, Region, VirtualDuration, VirtualInstant};
use dsnrep_workloads::TxCtx;

use crate::oracle::Reference;
use crate::plan::{FaultPlan, FaultSite, PlanError};
use crate::scenario::{Driver, Scenario};

/// A deliberately planted recovery bug, for validating that campaigns
/// catch and shrink real defects (they must never pass the oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Zero the undo-log chain head before every recovery attempt: the
    /// recovery procedure "forgets" to roll the interrupted transaction
    /// back, leaving its partial writes in the committed image. Visible
    /// to the standalone exact-image check; a 1-safe failover's torn
    /// window legitimately hides it.
    SkipUndoChain,
    /// Flip a committed database byte before every recovery attempt:
    /// recovery "scribbles" over data no in-flight transaction touched.
    /// Visible on every driver — no torn window explains it.
    ScribbleCommitted,
}

/// How a faulted run broke its contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The recovered image differs from the oracle outside any allowed
    /// torn tail. Offsets are region-relative.
    Divergence {
        /// The recovered sequence number the image was compared at.
        seq: u64,
        /// Region-relative offset of the first unexplained byte.
        offset: u64,
    },
    /// The recovered sequence number is impossible: ahead of what the
    /// primary ever committed, or (for local recovery) behind it.
    SequenceDrift {
        /// What recovery reported.
        recovered: u64,
        /// Transactions the primary completed before the crash.
        committed: u64,
    },
    /// 1-safe replication lost more than the in-flight window.
    ExcessiveLoss {
        /// What recovery reported.
        recovered: u64,
        /// Transactions the primary completed before the crash.
        committed: u64,
    },
    /// The detection/takeover timeline is internally inconsistent.
    TimelineInverted(String),
    /// A panic that was not an injected fault (a real bug in the
    /// recovery path).
    UnexpectedPanic(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Divergence { seq, offset } => write!(
                f,
                "database diverges from the oracle at seq {seq}, region offset {offset}"
            ),
            Violation::SequenceDrift {
                recovered,
                committed,
            } => write!(
                f,
                "recovered seq {recovered} is impossible against {committed} committed"
            ),
            Violation::ExcessiveLoss {
                recovered,
                committed,
            } => write!(
                f,
                "lost {} transactions (recovered {recovered} of {committed})",
                committed - recovered
            ),
            Violation::TimelineInverted(msg) => write!(f, "takeover timeline inconsistent: {msg}"),
            Violation::UnexpectedPanic(msg) => write!(f, "unexpected panic: {msg}"),
        }
    }
}

/// What one plan execution produced. `PartialEq` exists so determinism
/// tests can compare whole outcomes across replays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The plan that ran.
    pub plan: FaultPlan,
    /// Transactions the primary completed before any crash.
    pub committed: u64,
    /// The committed sequence after recovery (equals `committed` on a
    /// graceful run).
    pub recovered: u64,
    /// Injected faults that actually fired.
    pub faults_fired: u64,
    /// Accounted stores the primary executed during the run.
    pub stores: u64,
    /// SAN packets the primary emitted during the run.
    pub packets: u64,
    /// Arena writes the final (successful) recovery attempt performed.
    pub recovery_writes: u64,
    /// Crash-to-serving outage in picoseconds, when a takeover happened.
    pub outage_ps: Option<u64>,
    /// Commits whose chain/quorum acknowledgement set never assembled
    /// (the head proceeded after a coordinator timeout). Nonzero only
    /// for N-node drivers under partition faults.
    pub degraded: u64,
    /// The broken invariant, if any.
    pub violation: Option<Violation>,
}

impl Outcome {
    fn new(scenario: &Scenario, plan: &FaultPlan) -> Self {
        Outcome {
            scenario: *scenario,
            plan: plan.clone(),
            committed: 0,
            recovered: 0,
            faults_fired: 0,
            stores: 0,
            packets: 0,
            recovery_writes: 0,
            outage_ps: None,
            degraded: 0,
            violation: None,
        }
    }
}

const FAULT_MARKER: &str = "fault injection";

static SILENCE: Once = Once::new();

/// Installs a process-wide panic hook that swallows the backtrace noise
/// of *injected* faults (they are caught by design); every other panic
/// still reports normally. Idempotent.
pub fn silence_fault_panics() {
    SILENCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains(FAULT_MARKER) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, turning a panic into its message.
fn run_caught<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())),
    }
}

fn is_fault(msg: &str) -> bool {
    msg.contains(FAULT_MARKER)
}

fn check_plan(scenario: &Scenario, plan: &FaultPlan) -> Result<(), PlanError> {
    plan.validate()?;
    if scenario.driver == Driver::Standalone {
        if matches!(plan.primary_crash(), Some(FaultSite::Packet(_))) {
            return Err(PlanError::new(
                "a packet-boundary crash needs a SAN link; the standalone driver has none",
            ));
        }
        if plan.heartbeat_delay_ps() > 0 || plan.heartbeat_drop_after().is_some() {
            return Err(PlanError::new(
                "heartbeat faults need a cluster; the standalone driver has none",
            ));
        }
    }
    match scenario.topology() {
        Some(Ok(topology)) => {
            let allowed = modeled_pairs(topology);
            for (from, to) in plan.partition_pairs() {
                if !allowed.contains(&(from, to)) {
                    return Err(PlanError::new(format!(
                        "partition {from}->{to} targets a pair the {topology} strategy \
                         never moves packets over (modeled pairs: {allowed:?})"
                    )));
                }
            }
        }
        Some(Err(e)) => {
            return Err(PlanError::new(format!("scenario topology is invalid: {e}")));
        }
        None => {
            if !plan.partition_pairs().is_empty() {
                return Err(PlanError::new(
                    "partition faults need a multi-link fabric; only the chain and quorum \
                     drivers have one",
                ));
            }
        }
    }
    Ok(())
}

fn apply_mutation(mutation: Option<Mutation>, arena: &Rc<RefCell<Arena>>) {
    match mutation {
        Some(Mutation::SkipUndoChain) => {
            let mut arena = arena.borrow_mut();
            if let Ok(layout) = Layout::read(&arena) {
                if let Some(log) = layout.region(RegionId::UndoLog) {
                    arena.write_u64(log.start(), 0);
                }
            }
        }
        Some(Mutation::ScribbleCommitted) => {
            let mut arena = arena.borrow_mut();
            if let Ok(layout) = Layout::read(&arena) {
                if let Some(db) = layout.region(RegionId::Database) {
                    // The byte is XOR-flipped (not overwritten), so the
                    // corruption never accidentally matches the oracle.
                    let addr = db.start() + db.len() / 2;
                    let byte = arena.read_vec(addr, 1)[0];
                    arena.write(addr, &[byte ^ 0xA5]);
                }
            }
        }
        None => {}
    }
}

/// Executes `plan` against `scenario`, building a fresh oracle reference.
///
/// # Errors
///
/// Returns a [`PlanError`] if the plan is inconsistent or names a site
/// the scenario's driver does not have. A plan that merely *breaks* the
/// run is not an error: the breakage lands in [`Outcome::violation`].
pub fn execute(scenario: &Scenario, plan: &FaultPlan) -> Result<Outcome, PlanError> {
    let reference = Reference::build(scenario);
    execute_against(scenario, plan, &reference, None)
}

/// As [`execute`], reusing a prebuilt [`Reference`] (campaigns run many
/// plans against one scenario) and optionally planting a [`Mutation`].
///
/// # Errors
///
/// Returns a [`PlanError`] if the plan is invalid for the scenario.
pub fn execute_against(
    scenario: &Scenario,
    plan: &FaultPlan,
    reference: &Reference,
    mutation: Option<Mutation>,
) -> Result<Outcome, PlanError> {
    check_plan(scenario, plan)?;
    silence_fault_panics();
    Ok(match scenario.driver {
        Driver::Standalone => run_standalone(scenario, plan, reference, mutation),
        Driver::Passive => run_passive(scenario, plan, reference, mutation),
        Driver::Active => run_active(scenario, plan, reference, mutation),
        Driver::Chain | Driver::Quorum => run_replica_set(scenario, plan, reference, mutation),
    })
}

/// Runs the workload loop, halting at the plan's transaction boundary or
/// on an injected mid-transaction fault. Returns `false` on a violation.
fn run_txn_loop(
    out: &mut Outcome,
    txns: u64,
    crash_txn: Option<u64>,
    mut one_txn: impl FnMut() -> Result<(), dsnrep_core::TxError>,
) -> bool {
    while out.committed < txns {
        if crash_txn == Some(out.committed) {
            return true;
        }
        match run_caught(&mut one_txn) {
            Ok(Ok(())) => out.committed += 1,
            Ok(Err(e)) => {
                out.violation = Some(Violation::UnexpectedPanic(format!("engine error: {e:?}")));
                return false;
            }
            Err(msg) if is_fault(&msg) => {
                out.faults_fired += 1;
                return true;
            }
            Err(msg) => {
                out.violation = Some(Violation::UnexpectedPanic(msg));
                return false;
            }
        }
    }
    true
}

fn read_db(arena: &Rc<RefCell<Arena>>, db: Region) -> Vec<u8> {
    arena.borrow().read_vec(db.start(), db.len() as usize)
}

fn check_image(
    out: &mut Outcome,
    reference: &Reference,
    arena: &Rc<RefCell<Arena>>,
    db: Region,
    seq: u64,
    allow_torn_tail: bool,
) {
    if seq > reference.txns() {
        out.violation = Some(Violation::SequenceDrift {
            recovered: seq,
            committed: out.committed,
        });
        return;
    }
    let actual = read_db(arena, db);
    if let Some(offset) = reference.first_unexplained_mismatch(seq, &actual, allow_torn_tail) {
        out.violation = Some(Violation::Divergence { seq, offset });
    }
}

fn check_timeline(
    out: &mut Outcome,
    plan: &FaultPlan,
    crashed_at: VirtualInstant,
    recovery: VirtualDuration,
    rf: u8,
) {
    let faults = HeartbeatFaults {
        delay: VirtualDuration::from_picos(plan.heartbeat_delay_ps()),
        drop_after: plan.heartbeat_drop_after(),
    };
    let backups: Vec<NodeId> = (1..rf.max(2)).map(NodeId::new).collect();
    let mut views = ViewManager::new(NodeId::new(0), backups, VirtualInstant::EPOCH);
    let timeline: TakeoverTimeline = match takeover_timeline_with_faults(
        HeartbeatConfig::default(),
        VirtualDuration::from_micros(3),
        crashed_at,
        recovery,
        &mut views,
        faults,
    ) {
        Ok(t) => t,
        Err(e) => {
            out.violation = Some(Violation::TimelineInverted(format!("no successor: {e:?}")));
            return;
        }
    };
    out.outage_ps = Some(timeline.outage().as_picos());
    if timeline.serving_at != timeline.view_installed_at + recovery {
        out.violation = Some(Violation::TimelineInverted(format!(
            "serving_at {} != view_installed_at {} + recovery {}",
            timeline.serving_at, timeline.view_installed_at, recovery
        )));
    } else if timeline.detected_at < timeline.last_heartbeat_at {
        out.violation = Some(Violation::TimelineInverted(format!(
            "detected_at {} precedes last_heartbeat_at {}",
            timeline.detected_at, timeline.last_heartbeat_at
        )));
    } else if faults.drop_after.is_none() && timeline.detected_at <= crashed_at {
        out.violation = Some(Violation::TimelineInverted(format!(
            "without dropped beats, detection at {} cannot precede the crash at {}",
            timeline.detected_at, crashed_at
        )));
    }
}

fn run_standalone(
    scenario: &Scenario,
    plan: &FaultPlan,
    reference: &Reference,
    mutation: Option<Mutation>,
) -> Outcome {
    let mut out = Outcome::new(scenario, plan);
    let costs = CostModel::alpha_21164a();
    let config = EngineConfig::for_db(scenario.db_len);
    let arena = dsnrep_core::shared_arena(arena_len(scenario.version, &config));
    let mut m = Machine::standalone(costs.clone(), Rc::clone(&arena));
    let mut engine = build_engine(scenario.version, &mut m, &config);
    let db = engine.db_region();
    let mut workload = scenario.workload.build(db, scenario.seed);

    let site = plan.primary_crash();
    if let Some(FaultSite::Store(n)) = site {
        m.inject_crash_after_stores(n);
    }
    let crash_txn = match site {
        Some(FaultSite::Txn(n)) => Some(n),
        _ => None,
    };
    let stores_before = m.stores_executed();
    let ok = run_txn_loop(&mut out, scenario.txns, crash_txn, || {
        let mut ctx = TxCtx::new(&mut m, engine.as_mut());
        workload.run_txn(&mut ctx)
    });
    out.stores = m.stores_executed() - stores_before;
    if !ok {
        return out;
    }

    if site.is_none() {
        out.recovered = engine.committed_seq(&mut m);
        if out.recovered != scenario.txns {
            out.violation = Some(Violation::SequenceDrift {
                recovered: out.recovered,
                committed: out.committed,
            });
            return out;
        }
        let seq = out.recovered;
        check_image(&mut out, reference, &arena, db, seq, false);
        return out;
    }

    // The primary is gone; recover in place over the surviving arena,
    // crashing recovery itself as many times as the plan demands.
    m.clear_fault();
    m.crash();
    let mut at = m.now();
    drop(engine);
    drop(m);
    let recover_once = |at: VirtualInstant, arena: &Rc<RefCell<Arena>>| {
        let mut rm = Machine::standalone(costs.clone(), Rc::clone(arena));
        rm.clock_mut().advance_to(at);
        let mut engine = attach_engine(scenario.version, &mut rm);
        let report = engine.recover(&mut rm);
        (report, rm.now())
    };
    let mut done = None;
    for budget in plan.recovery_crashes() {
        apply_mutation(mutation, &arena);
        let writes_before = arena.borrow().writes();
        arena.borrow_mut().inject_halt_after_writes(budget);
        let result = run_caught(|| recover_once(at, &arena));
        arena.borrow_mut().clear_halt();
        match result {
            Ok((report, t)) => {
                out.recovery_writes = arena.borrow().writes() - writes_before;
                at = t;
                done = Some(report);
                break;
            }
            Err(msg) if is_fault(&msg) => out.faults_fired += 1,
            Err(msg) => {
                out.violation = Some(Violation::UnexpectedPanic(msg));
                return out;
            }
        }
    }
    let report = match done {
        Some(report) => report,
        None => {
            apply_mutation(mutation, &arena);
            let writes_before = arena.borrow().writes();
            match run_caught(|| recover_once(at, &arena)) {
                Ok((report, _)) => {
                    out.recovery_writes = arena.borrow().writes() - writes_before;
                    report
                }
                Err(msg) => {
                    out.violation = Some(Violation::UnexpectedPanic(msg));
                    return out;
                }
            }
        }
    };
    out.recovered = report.committed_seq;
    // Local recovery loses nothing: every completed transaction was
    // durable, and at most the in-flight one may have committed after
    // the loop's count was taken.
    if out.recovered < out.committed || out.recovered > out.committed + 1 {
        out.violation = Some(Violation::SequenceDrift {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    let seq = out.recovered;
    check_image(&mut out, reference, &arena, db, seq, false);
    out
}

/// 1-safe replication may lose the in-flight tail; more than this many
/// transactions behind the primary is a bug (matches the bound the
/// failover property tests have always enforced).
const LOSS_BOUND: u64 = 64;

fn run_passive(
    scenario: &Scenario,
    plan: &FaultPlan,
    reference: &Reference,
    mutation: Option<Mutation>,
) -> Outcome {
    let mut out = Outcome::new(scenario, plan);
    let costs = CostModel::alpha_21164a();
    let config = EngineConfig::for_db(scenario.db_len);
    let mut cluster = PassiveCluster::new(costs.clone(), scenario.version, &config);
    let db = cluster.engine().db_region();
    let mut workload = scenario.workload.build(db, scenario.seed);

    let site = plan.primary_crash();
    match site {
        Some(FaultSite::Store(n)) => cluster.machine_mut().inject_crash_after_stores(n),
        Some(FaultSite::Packet(n)) => cluster.machine_mut().inject_crash_after_packets(n),
        _ => {}
    }
    let crash_txn = match site {
        Some(FaultSite::Txn(n)) => Some(n),
        _ => None,
    };
    let stores_before = cluster.machine().stores_executed();
    let packets_before = cluster.machine().packets_emitted();
    let ok = run_txn_loop(&mut out, scenario.txns, crash_txn, || {
        cluster.run_txn(workload.as_mut());
        Ok(())
    });
    out.stores = cluster.machine().stores_executed() - stores_before;
    out.packets = cluster.machine().packets_emitted() - packets_before;
    if !ok {
        return out;
    }

    if site.is_none() {
        cluster.quiesce();
        out.recovered = out.committed;
        let backup = Rc::clone(cluster.backup_arena());
        let seq = out.recovered;
        check_image(&mut out, reference, &backup, db, seq, false);
        return out;
    }

    cluster.machine_mut().clear_fault();
    cluster.machine_mut().clear_packet_fault();
    let mut takeover = Some(cluster.begin_takeover(0));
    let crashed_at = takeover.as_ref().map(Takeover::now).unwrap();
    let mut failover: Option<Failover> = None;
    for budget in plan.recovery_crashes() {
        let t = takeover
            .take()
            .expect("the takeover survives until a failover exists");
        let arena = t.arena();
        let at = t.now();
        apply_mutation(mutation, &arena);
        let writes_before = arena.borrow().writes();
        arena.borrow_mut().inject_halt_after_writes(budget);
        let result = run_caught(move || t.recover());
        arena.borrow_mut().clear_halt();
        match result {
            Ok(f) => {
                out.recovery_writes = arena.borrow().writes() - writes_before;
                failover = Some(f);
                break;
            }
            Err(msg) if is_fault(&msg) => {
                out.faults_fired += 1;
                takeover = Some(Takeover::resume(
                    scenario.version,
                    costs.clone(),
                    Rc::clone(&arena),
                    NullTracer,
                    at,
                ));
            }
            Err(msg) => {
                out.violation = Some(Violation::UnexpectedPanic(msg));
                return out;
            }
        }
    }
    let failover = match failover {
        Some(f) => f,
        None => {
            let t = takeover
                .take()
                .expect("no failover yet, so the takeover survived");
            let arena = t.arena();
            apply_mutation(mutation, &arena);
            let writes_before = arena.borrow().writes();
            match run_caught(move || t.recover()) {
                Ok(f) => {
                    out.recovery_writes = arena.borrow().writes() - writes_before;
                    f
                }
                Err(msg) => {
                    out.violation = Some(Violation::UnexpectedPanic(msg));
                    return out;
                }
            }
        }
    };
    out.recovered = failover.report.committed_seq;
    if out.recovered > out.committed + 1 {
        out.violation = Some(Violation::SequenceDrift {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    if out.committed.saturating_sub(out.recovered) >= LOSS_BOUND {
        out.violation = Some(Violation::ExcessiveLoss {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    let arena = Rc::clone(failover.machine.arena());
    let seq = out.recovered;
    check_image(&mut out, reference, &arena, db, seq, true);
    if out.violation.is_none() {
        check_timeline(&mut out, plan, crashed_at, failover.recovery_time, 2);
    }
    out
}

fn run_active(
    scenario: &Scenario,
    plan: &FaultPlan,
    reference: &Reference,
    mutation: Option<Mutation>,
) -> Outcome {
    let mut out = Outcome::new(scenario, plan);
    let costs = CostModel::alpha_21164a();
    let config = EngineConfig::for_db(scenario.db_len);
    let mut cluster = ActiveCluster::new(costs.clone(), &config);
    if scenario.two_safe {
        cluster.set_durability(Durability::TwoSafe);
    }
    let db = cluster.db_region();
    let mut workload = scenario.workload.build(db, scenario.seed);

    let site = plan.primary_crash();
    match site {
        Some(FaultSite::Store(n)) => cluster.machine_mut().inject_crash_after_stores(n),
        Some(FaultSite::Packet(n)) => cluster.machine_mut().inject_crash_after_packets(n),
        _ => {}
    }
    let crash_txn = match site {
        Some(FaultSite::Txn(n)) => Some(n),
        _ => None,
    };
    let stores_before = cluster.machine().stores_executed();
    let packets_before = cluster.machine().packets_emitted();
    let ok = run_txn_loop(&mut out, scenario.txns, crash_txn, || {
        cluster.run_txn(workload.as_mut());
        Ok(())
    });
    out.stores = cluster.machine().stores_executed() - stores_before;
    out.packets = cluster.machine().packets_emitted() - packets_before;
    if !ok {
        return out;
    }

    if site.is_none() {
        cluster.settle();
        out.recovered = cluster.backup_applied_seq();
        if out.recovered != scenario.txns {
            out.violation = Some(Violation::SequenceDrift {
                recovered: out.recovered,
                committed: out.committed,
            });
            return out;
        }
        let backup = Rc::clone(cluster.backup_arena());
        let seq = out.recovered;
        check_image(&mut out, reference, &backup, db, seq, false);
        return out;
    }

    cluster.machine_mut().clear_fault();
    cluster.machine_mut().clear_packet_fault();
    let mut takeover = Some(cluster.begin_takeover());
    let crashed_at = takeover.as_ref().map(ActiveTakeover::now).unwrap();
    let mut failover: Option<Failover> = None;
    for budget in plan.recovery_crashes() {
        let t = takeover
            .take()
            .expect("the takeover survives until a failover exists");
        let arena = t.arena();
        let at = t.now();
        apply_mutation(mutation, &arena);
        let writes_before = arena.borrow().writes();
        arena.borrow_mut().inject_halt_after_writes(budget);
        let result = run_caught(move || t.recover());
        arena.borrow_mut().clear_halt();
        match result {
            Ok(Ok(f)) => {
                out.recovery_writes = arena.borrow().writes() - writes_before;
                failover = Some(f);
                break;
            }
            Ok(Err(e)) => {
                out.violation = Some(Violation::UnexpectedPanic(format!(
                    "backup layout unreadable: {e}"
                )));
                return out;
            }
            Err(msg) if is_fault(&msg) => {
                out.faults_fired += 1;
                match ActiveTakeover::resume(costs.clone(), Rc::clone(&arena), NullTracer, at) {
                    Ok(t) => takeover = Some(t),
                    Err(e) => {
                        out.violation = Some(Violation::UnexpectedPanic(format!(
                            "mid-recovery halt corrupted the layout: {e}"
                        )));
                        return out;
                    }
                }
            }
            Err(msg) => {
                out.violation = Some(Violation::UnexpectedPanic(msg));
                return out;
            }
        }
    }
    let failover = match failover {
        Some(f) => f,
        None => {
            let t = takeover
                .take()
                .expect("no failover yet, so the takeover survived");
            let arena = t.arena();
            apply_mutation(mutation, &arena);
            let writes_before = arena.borrow().writes();
            match run_caught(move || t.recover()) {
                Ok(Ok(f)) => {
                    out.recovery_writes = arena.borrow().writes() - writes_before;
                    f
                }
                Ok(Err(e)) => {
                    out.violation = Some(Violation::UnexpectedPanic(format!(
                        "backup layout unreadable: {e}"
                    )));
                    return out;
                }
                Err(msg) => {
                    out.violation = Some(Violation::UnexpectedPanic(msg));
                    return out;
                }
            }
        }
    };
    out.recovered = failover.report.committed_seq;
    if out.recovered > out.committed + 1 {
        out.violation = Some(Violation::SequenceDrift {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    if scenario.two_safe && out.recovered < out.committed {
        out.violation = Some(Violation::ExcessiveLoss {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    if out.committed.saturating_sub(out.recovered) >= LOSS_BOUND {
        out.violation = Some(Violation::ExcessiveLoss {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    // The active backup applies whole publications: its recovered image
    // is byte-exact at its own boundary, never torn.
    let arena = Rc::clone(failover.machine.arena());
    let seq = out.recovered;
    check_image(&mut out, reference, &arena, db, seq, false);
    if out.violation.is_none() {
        check_timeline(&mut out, plan, crashed_at, failover.recovery_time, 2);
    }
    out
}

fn run_replica_set(
    scenario: &Scenario,
    plan: &FaultPlan,
    reference: &Reference,
    mutation: Option<Mutation>,
) -> Outcome {
    let mut out = Outcome::new(scenario, plan);
    let costs = CostModel::alpha_21164a();
    let config = EngineConfig::for_db(scenario.db_len);
    let topology = scenario
        .topology()
        .expect("chain/quorum drivers have a topology")
        .expect("check_plan validated the topology");
    let mut set = ReplicaSet::new(costs.clone(), scenario.version, &config, topology);
    for (from, to, ps) in plan.partition_delays() {
        set.partition_delay(from, to, VirtualDuration::from_picos(ps));
    }
    for (from, to, n) in plan.partition_drops() {
        set.partition_drop_after(from, to, n);
    }
    let db = set.engine().db_region();
    let mut workload = scenario.workload.build(db, scenario.seed);

    let site = plan.primary_crash();
    match site {
        Some(FaultSite::Store(n)) => set.machine_mut().inject_crash_after_stores(n),
        Some(FaultSite::Packet(n)) => set.machine_mut().inject_crash_after_packets(n),
        _ => {}
    }
    let crash_txn = match site {
        Some(FaultSite::Txn(n)) => Some(n),
        _ => None,
    };
    let stores_before = set.machine().stores_executed();
    let packets_before = set.machine().packets_emitted();
    let ok = run_txn_loop(&mut out, scenario.txns, crash_txn, || {
        set.run_txn(workload.as_mut());
        Ok(())
    });
    out.stores = set.machine().stores_executed() - stores_before;
    out.packets = set.machine().packets_emitted() - packets_before;
    if !ok {
        return out;
    }

    if site.is_none() {
        set.quiesce();
        out.degraded = set.degraded_commits();
        out.recovered = out.committed;
        // Chain and quorum heads run 2-safe toward node 1: its image is
        // exact at every graceful boundary, partitions or not.
        let node1 = Rc::clone(set.replica_arena(1));
        let seq = out.recovered;
        check_image(&mut out, reference, &node1, db, seq, false);
        // Without partitions, every further replica converges too.
        if out.violation.is_none() && plan.partition_pairs().is_empty() {
            for node in 2..scenario.rf {
                let arena = Rc::clone(set.replica_arena(node));
                check_image(&mut out, reference, &arena, db, seq, false);
                if out.violation.is_some() {
                    break;
                }
            }
        }
        return out;
    }

    set.machine_mut().clear_fault();
    set.machine_mut().clear_packet_fault();
    out.degraded = set.degraded_commits();
    let replica_takeover = set.begin_takeover();
    let crashed_at = replica_takeover.crashed_at;
    let mut takeover = Some(replica_takeover.takeover);
    let mut failover: Option<Failover> = None;
    for budget in plan.recovery_crashes() {
        let t = takeover
            .take()
            .expect("the takeover survives until a failover exists");
        let arena = t.arena();
        let at = t.now();
        apply_mutation(mutation, &arena);
        let writes_before = arena.borrow().writes();
        arena.borrow_mut().inject_halt_after_writes(budget);
        let result = run_caught(move || t.recover());
        arena.borrow_mut().clear_halt();
        match result {
            Ok(f) => {
                out.recovery_writes = arena.borrow().writes() - writes_before;
                failover = Some(f);
                break;
            }
            Err(msg) if is_fault(&msg) => {
                out.faults_fired += 1;
                takeover = Some(Takeover::resume(
                    scenario.version,
                    costs.clone(),
                    Rc::clone(&arena),
                    NullTracer,
                    at,
                ));
            }
            Err(msg) => {
                out.violation = Some(Violation::UnexpectedPanic(msg));
                return out;
            }
        }
    }
    let failover = match failover {
        Some(f) => f,
        None => {
            let t = takeover
                .take()
                .expect("no failover yet, so the takeover survived");
            let arena = t.arena();
            apply_mutation(mutation, &arena);
            let writes_before = arena.borrow().writes();
            match run_caught(move || t.recover()) {
                Ok(f) => {
                    out.recovery_writes = arena.borrow().writes() - writes_before;
                    f
                }
                Err(msg) => {
                    out.violation = Some(Violation::UnexpectedPanic(msg));
                    return out;
                }
            }
        }
    };
    out.recovered = failover.report.committed_seq;
    // Chain and quorum commits are 2-safe: nothing committed is ever
    // lost, partitions included, and at most the in-flight transaction
    // may have committed past the loop's count.
    if out.recovered < out.committed || out.recovered > out.committed + 1 {
        out.violation = Some(Violation::SequenceDrift {
            recovered: out.recovered,
            committed: out.committed,
        });
        return out;
    }
    let arena = Rc::clone(failover.machine.arena());
    let seq = out.recovered;
    check_image(&mut out, reference, &arena, db, seq, true);
    if out.violation.is_none() {
        check_timeline(
            &mut out,
            plan,
            crashed_at,
            failover.recovery_time,
            scenario.rf,
        );
    }
    out
}
