//! The FaultPlan description language.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s with a stable,
//! copy-pasteable text form. The grammar is line-oriented prose, one
//! event per `;`-separated clause:
//!
//! ```text
//! crash primary @ store=120
//! crash primary @ packet=7
//! crash primary @ txn=3
//! crash backup @ recovery-write=12
//! delay heartbeats=40000000ps
//! drop heartbeats after=10
//! partition 1->2 delay=40000ps
//! partition 1->2 drop after=3
//! ```
//!
//! `FromStr` and `Display` round-trip exactly: a plan printed by the
//! shrinker parses back to the same plan, which is what makes a shrunk
//! counterexample a one-line regression test.

use std::fmt;
use std::str::FromStr;

/// Where the primary halts, counted from the start of the workload run.
///
/// All sites are *boundary counters*: `Store(n)` means the primary has
/// executed exactly `n` accounted stores when it halts (the `n`-th store
/// never reaches recoverable memory), `Packet(n)` means exactly `n` SAN
/// packets left the adapter, `Txn(n)` means the crash lands on the quiet
/// boundary after the `n`-th committed transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Halt before the (n+1)-th accounted store executes.
    Store(u64),
    /// Halt before the (n+1)-th SAN packet reaches the link.
    Packet(u64),
    /// Halt on the boundary after `n` committed transactions.
    Txn(u64),
}

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultEvent {
    /// Crash the primary at a site.
    CrashPrimary(FaultSite),
    /// Crash the promoted backup after `n` arena writes of its recovery
    /// procedure (a double fault: the takeover itself dies mid-flight).
    /// Multiple events stack: the k-th one arms the k-th recovery attempt.
    CrashBackupRecoveryWrite(u64),
    /// Delay every heartbeat by this many picoseconds (congested SAN).
    DelayHeartbeats(u64),
    /// Drop every heartbeat after the first `n` emissions (a wedged
    /// primary that stops beating before it stops serving).
    DropHeartbeatsAfter(u64),
    /// Delay every delivery on one directed fabric pair by this many
    /// picoseconds (an asymmetric, congested inter-node path). Only
    /// meaningful for N-node drivers whose strategy moves packets over
    /// that pair.
    PartitionDelay {
        /// Sending node.
        from: u8,
        /// Receiving node.
        to: u8,
        /// Extra delivery delay, picoseconds.
        ps: u64,
    },
    /// Swallow every packet on one directed fabric pair after the first
    /// `n` (a link that silently dies mid-run; the sender cannot tell).
    PartitionDropAfter {
        /// Sending node.
        from: u8,
        /// Receiving node.
        to: u8,
        /// Packets allowed through before the drop starts.
        n: u64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::CrashPrimary(FaultSite::Store(n)) => {
                write!(f, "crash primary @ store={n}")
            }
            FaultEvent::CrashPrimary(FaultSite::Packet(n)) => {
                write!(f, "crash primary @ packet={n}")
            }
            FaultEvent::CrashPrimary(FaultSite::Txn(n)) => write!(f, "crash primary @ txn={n}"),
            FaultEvent::CrashBackupRecoveryWrite(n) => {
                write!(f, "crash backup @ recovery-write={n}")
            }
            FaultEvent::DelayHeartbeats(ps) => write!(f, "delay heartbeats={ps}ps"),
            FaultEvent::DropHeartbeatsAfter(n) => write!(f, "drop heartbeats after={n}"),
            FaultEvent::PartitionDelay { from, to, ps } => {
                write!(f, "partition {from}->{to} delay={ps}ps")
            }
            FaultEvent::PartitionDropAfter { from, to, n } => {
                write!(f, "partition {from}->{to} drop after={n}")
            }
        }
    }
}

/// A parse or validation failure, with the offending clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError(String);

impl PlanError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        PlanError(msg.into())
    }

    /// The human-readable reason.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PlanError {}

fn parse_u64(clause: &str, field: &str, text: &str) -> Result<u64, PlanError> {
    text.trim().parse::<u64>().map_err(|_| {
        PlanError::new(format!(
            "fault plan clause `{clause}`: bad {field} `{text}`"
        ))
    })
}

impl FromStr for FaultEvent {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let clause = s.trim();
        if let Some(rest) = clause.strip_prefix("crash primary @") {
            let rest = rest.trim();
            let (key, value) = rest.split_once('=').ok_or_else(|| {
                PlanError::new(format!("fault plan clause `{clause}`: expected site=<n>"))
            })?;
            let n = parse_u64(clause, "counter", value)?;
            return match key.trim() {
                "store" => Ok(FaultEvent::CrashPrimary(FaultSite::Store(n))),
                "packet" => Ok(FaultEvent::CrashPrimary(FaultSite::Packet(n))),
                "txn" => Ok(FaultEvent::CrashPrimary(FaultSite::Txn(n))),
                other => Err(PlanError::new(format!(
                    "fault plan clause `{clause}`: unknown crash site `{other}`"
                ))),
            };
        }
        if let Some(rest) = clause.strip_prefix("crash backup @") {
            let rest = rest.trim();
            let value = rest.strip_prefix("recovery-write=").ok_or_else(|| {
                PlanError::new(format!(
                    "fault plan clause `{clause}`: expected recovery-write=<n>"
                ))
            })?;
            return Ok(FaultEvent::CrashBackupRecoveryWrite(parse_u64(
                clause, "counter", value,
            )?));
        }
        if let Some(rest) = clause.strip_prefix("delay heartbeats=") {
            let value = rest.trim().strip_suffix("ps").ok_or_else(|| {
                PlanError::new(format!(
                    "fault plan clause `{clause}`: delay needs a `ps` suffix"
                ))
            })?;
            return Ok(FaultEvent::DelayHeartbeats(parse_u64(
                clause, "duration", value,
            )?));
        }
        if let Some(rest) = clause.strip_prefix("drop heartbeats after=") {
            return Ok(FaultEvent::DropHeartbeatsAfter(parse_u64(
                clause, "counter", rest,
            )?));
        }
        if let Some(rest) = clause.strip_prefix("partition ") {
            let (pair, effect) = rest.trim().split_once(' ').ok_or_else(|| {
                PlanError::new(format!(
                    "fault plan clause `{clause}`: expected `partition <from>-><to> <effect>`"
                ))
            })?;
            let (from, to) = pair.split_once("->").ok_or_else(|| {
                PlanError::new(format!(
                    "fault plan clause `{clause}`: pair must be `<from>-><to>`"
                ))
            })?;
            let from = u8::try_from(parse_u64(clause, "node", from)?).map_err(|_| {
                PlanError::new(format!("fault plan clause `{clause}`: node out of range"))
            })?;
            let to = u8::try_from(parse_u64(clause, "node", to)?).map_err(|_| {
                PlanError::new(format!("fault plan clause `{clause}`: node out of range"))
            })?;
            let effect = effect.trim();
            if let Some(value) = effect.strip_prefix("delay=") {
                let value = value.trim().strip_suffix("ps").ok_or_else(|| {
                    PlanError::new(format!(
                        "fault plan clause `{clause}`: delay needs a `ps` suffix"
                    ))
                })?;
                let ps = parse_u64(clause, "duration", value)?;
                return Ok(FaultEvent::PartitionDelay { from, to, ps });
            }
            if let Some(value) = effect.strip_prefix("drop after=") {
                let n = parse_u64(clause, "counter", value)?;
                return Ok(FaultEvent::PartitionDropAfter { from, to, n });
            }
            return Err(PlanError::new(format!(
                "fault plan clause `{clause}`: unknown partition effect `{effect}`"
            )));
        }
        Err(PlanError::new(format!(
            "fault plan clause `{clause}`: unrecognized event"
        )))
    }
}

/// An ordered fault schedule with a stable text form.
///
/// # Examples
///
/// ```
/// use dsnrep_faultsim::FaultPlan;
///
/// let plan: FaultPlan = "crash primary @ packet=7; crash backup @ recovery-write=3"
///     .parse()
///     .unwrap();
/// assert_eq!(plan.events().len(), 2);
/// assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (a fault-free run).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an event list (order is preserved and meaningful for
    /// stacked recovery-write crashes).
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// The scheduled events, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The primary-crash site, if any.
    pub fn primary_crash(&self) -> Option<FaultSite> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::CrashPrimary(site) => Some(*site),
            _ => None,
        })
    }

    /// The recovery-write budgets for successive recovery attempts, in
    /// schedule order.
    pub fn recovery_crashes(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CrashBackupRecoveryWrite(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Total heartbeat delay, in picoseconds.
    pub fn heartbeat_delay_ps(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                FaultEvent::DelayHeartbeats(ps) => *ps,
                _ => 0,
            })
            .sum()
    }

    /// The drop-after threshold, if any (smallest wins if repeated).
    pub fn heartbeat_drop_after(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::DropHeartbeatsAfter(n) => Some(*n),
                _ => None,
            })
            .min()
    }

    /// The partition delays, in schedule order, as `(from, to, ps)`.
    /// Repeats on one pair accumulate.
    pub fn partition_delays(&self) -> Vec<(u8, u8, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::PartitionDelay { from, to, ps } => Some((*from, *to, *ps)),
                _ => None,
            })
            .collect()
    }

    /// The partition drop thresholds, in schedule order, as
    /// `(from, to, n)`. The smallest threshold on a pair wins.
    pub fn partition_drops(&self) -> Vec<(u8, u8, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::PartitionDropAfter { from, to, n } => Some((*from, *to, *n)),
                _ => None,
            })
            .collect()
    }

    /// The directed pairs any partition event targets, in schedule order
    /// (duplicates preserved).
    pub fn partition_pairs(&self) -> Vec<(u8, u8)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::PartitionDelay { from, to, .. }
                | FaultEvent::PartitionDropAfter { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect()
    }

    /// Checks internal consistency: at most one primary crash; backup
    /// recovery crashes and heartbeat faults only make sense when a
    /// primary crash triggers a takeover. Partition events are allowed
    /// without a crash (they degrade graceful runs too); whether the
    /// targeted pair exists is driver-dependent and checked at run time.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), PlanError> {
        let crashes = self
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::CrashPrimary(_)))
            .count();
        if crashes > 1 {
            return Err(PlanError::new("a plan may crash the primary at most once"));
        }
        if crashes == 0 {
            let dependent = self.events.iter().find(|e| {
                matches!(
                    e,
                    FaultEvent::CrashBackupRecoveryWrite(_)
                        | FaultEvent::DelayHeartbeats(_)
                        | FaultEvent::DropHeartbeatsAfter(_)
                )
            });
            if let Some(e) = dependent {
                return Err(PlanError::new(format!(
                    "`{e}` requires a primary crash earlier in the plan"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return f.write_str("(no faults)");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed.is_empty() || trimmed == "(no faults)" {
            return Ok(FaultPlan::none());
        }
        let events = trimmed
            .split(';')
            .map(|clause| clause.parse::<FaultEvent>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_kind_round_trips_through_text() {
        let plan = FaultPlan::new(vec![
            FaultEvent::CrashPrimary(FaultSite::Store(120)),
            FaultEvent::CrashBackupRecoveryWrite(12),
            FaultEvent::CrashBackupRecoveryWrite(0),
            FaultEvent::DelayHeartbeats(40_000_000),
            FaultEvent::DropHeartbeatsAfter(10),
            FaultEvent::PartitionDelay {
                from: 1,
                to: 2,
                ps: 40_000,
            },
            FaultEvent::PartitionDropAfter {
                from: 2,
                to: 0,
                n: 3,
            },
        ]);
        let text = plan.to_string();
        assert_eq!(text.parse::<FaultPlan>().unwrap(), plan);

        for site in ["store", "packet", "txn"] {
            let one: FaultPlan = format!("crash primary @ {site}=3").parse().unwrap();
            assert_eq!(one.to_string().parse::<FaultPlan>().unwrap(), one);
        }
    }

    #[test]
    fn the_empty_plan_round_trips() {
        let none = FaultPlan::none();
        assert_eq!(none.to_string(), "(no faults)");
        assert_eq!("(no faults)".parse::<FaultPlan>().unwrap(), none);
        assert_eq!("".parse::<FaultPlan>().unwrap(), none);
    }

    #[test]
    fn bad_clauses_are_rejected_with_context() {
        for bad in [
            "crash primary @ disk=1",
            "crash primary @ store=abc",
            "crash backup @ store=1",
            "delay heartbeats=40",
            "reboot the rack",
            "partition 1->2 sever",
            "partition 1=>2 delay=40ps",
            "partition 999->2 delay=40ps",
            "partition 1->2 delay=40",
        ] {
            let err = bad.parse::<FaultPlan>().unwrap_err();
            assert!(err.message().contains("fault plan clause"), "{bad}: {err}");
        }
    }

    #[test]
    fn validation_catches_inconsistent_plans() {
        let two_crashes: FaultPlan = "crash primary @ txn=1; crash primary @ txn=2"
            .parse()
            .unwrap();
        assert!(two_crashes.validate().is_err());

        let orphan_recovery: FaultPlan = "crash backup @ recovery-write=3".parse().unwrap();
        assert!(orphan_recovery.validate().is_err());

        let ok: FaultPlan = "crash primary @ txn=2; crash backup @ recovery-write=3; \
                             delay heartbeats=1000ps"
            .parse()
            .unwrap();
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn accessors_partition_the_schedule() {
        let plan: FaultPlan = "crash primary @ packet=9; crash backup @ recovery-write=4; \
                               crash backup @ recovery-write=1; delay heartbeats=500ps; \
                               drop heartbeats after=7"
            .parse()
            .unwrap();
        assert_eq!(plan.primary_crash(), Some(FaultSite::Packet(9)));
        assert_eq!(plan.recovery_crashes(), vec![4, 1]);
        assert_eq!(plan.heartbeat_delay_ps(), 500);
        assert_eq!(plan.heartbeat_drop_after(), Some(7));
    }

    #[test]
    fn partitions_are_valid_without_a_crash_and_partition_the_schedule() {
        let plan: FaultPlan = "partition 0->2 delay=40000ps; partition 2->0 drop after=5"
            .parse()
            .unwrap();
        assert!(plan.validate().is_ok(), "partitions degrade graceful runs");
        assert_eq!(plan.partition_delays(), vec![(0, 2, 40_000)]);
        assert_eq!(plan.partition_drops(), vec![(2, 0, 5)]);
        assert_eq!(plan.partition_pairs(), vec![(0, 2), (2, 0)]);
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
    }
}
