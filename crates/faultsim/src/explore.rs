//! Campaign exploration: exhaustive single-fault sweeps for small runs,
//! seeded random multi-fault schedules for large ones.
//!
//! Both modes funnel every outcome through the shadow oracle and the
//! recovery invariants; any failing schedule is shrunk on the spot to a
//! minimal [`FaultPlan`] and reported as a [`Counterexample`] carrying a
//! copy-pasteable regression test.

use dsnrep_repl::modeled_pairs;
use dsnrep_simcore::SplitMix64;

use crate::exec::{execute_against, Mutation, Violation};
use crate::oracle::Reference;
use crate::plan::{FaultEvent, FaultPlan, FaultSite, PlanError};
use crate::scenario::{Driver, Scenario};
use crate::shrink::{regression_snippet, shrink, ShrinkResult};

/// Boundary counts discovered by probing a scenario: the denominators of
/// an exhaustive sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Accounted stores the primary executes in a fault-free run.
    pub stores: u64,
    /// SAN packets the primary emits in a fault-free run.
    pub packets: u64,
    /// Arena writes of the recovery that follows a crash at the last
    /// store boundary (the deepest rollback the run can need).
    pub recovery_writes: u64,
}

/// Measures a scenario's boundary counts with two instrumented runs: one
/// fault-free, one crashed at the final store boundary.
///
/// # Errors
///
/// Returns a [`PlanError`] if either probe run itself violates the
/// oracle — a broken scenario cannot be swept meaningfully.
pub fn probe(scenario: &Scenario, reference: &Reference) -> Result<Probe, PlanError> {
    let clean = execute_against(scenario, &FaultPlan::none(), reference, None)?;
    if let Some(v) = clean.violation {
        return Err(PlanError::new(format!(
            "fault-free probe run violated: {v}"
        )));
    }
    let site = if clean.stores > 0 {
        FaultSite::Store(clean.stores - 1)
    } else {
        FaultSite::Txn(scenario.txns)
    };
    let plan = FaultPlan::new(vec![FaultEvent::CrashPrimary(site)]);
    let crashed = execute_against(scenario, &plan, reference, None)?;
    if let Some(v) = crashed.violation {
        return Err(PlanError::new(format!("crash probe run violated: {v}")));
    }
    Ok(Probe {
        stores: clean.stores,
        packets: clean.packets,
        recovery_writes: crashed.recovery_writes,
    })
}

/// A failing schedule, shrunk to its minimal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The scenario label the failure occurred under.
    pub scenario: String,
    /// The schedule the explorer found.
    pub original: FaultPlan,
    /// What the original schedule broke.
    pub violation: Violation,
    /// The minimal failing schedule.
    pub shrunk: FaultPlan,
    /// What the shrunk schedule breaks (may differ in detail).
    pub shrunk_violation: Violation,
    /// Plan executions the shrinker spent.
    pub shrink_executions: u64,
    /// A copy-pasteable regression test reproducing the shrunk failure.
    pub regression_test: String,
}

/// Aggregated coverage and findings for one scenario's campaign.
/// `PartialEq` exists so determinism tests can compare whole campaigns
/// across replays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Campaign {
    /// The scenario swept.
    pub scenario: Scenario,
    /// Plans executed (excluding probe and shrink runs).
    pub plans_run: u64,
    /// Injected faults that actually fired across all plans.
    pub faults_fired: u64,
    /// Plans whose primary crash sat on a store boundary.
    pub store_sites: u64,
    /// Plans whose primary crash sat on a SAN packet boundary.
    pub packet_sites: u64,
    /// Plans whose primary crash sat on a transaction boundary.
    pub txn_sites: u64,
    /// Mid-recovery crash events scheduled across all plans.
    pub recovery_sites: u64,
    /// Plans that distorted the heartbeat path (delay or drop).
    pub heartbeat_faults: u64,
    /// Plans that partitioned a fabric pair (delay or drop).
    pub partition_faults: u64,
    /// Commits that proceeded degraded (ack set never assembled) across
    /// all plans.
    pub degraded_commits: u64,
    /// The worst crash-to-serving outage observed, in picoseconds.
    pub max_outage_ps: u64,
    /// The probe counts the sweep was derived from.
    pub probe: Probe,
    /// Every failing schedule, shrunk.
    pub counterexamples: Vec<Counterexample>,
}

impl Campaign {
    fn new(scenario: &Scenario, probe: Probe) -> Self {
        Campaign {
            scenario: *scenario,
            plans_run: 0,
            faults_fired: 0,
            store_sites: 0,
            packet_sites: 0,
            txn_sites: 0,
            recovery_sites: 0,
            heartbeat_faults: 0,
            partition_faults: 0,
            degraded_commits: 0,
            max_outage_ps: 0,
            probe,
            counterexamples: Vec::new(),
        }
    }

    /// `true` when every plan passed the oracle and the invariants.
    pub fn clean(&self) -> bool {
        self.counterexamples.is_empty()
    }

    fn run_plan(
        &mut self,
        reference: &Reference,
        plan: FaultPlan,
        mutation: Option<Mutation>,
    ) -> Result<(), PlanError> {
        let scenario = self.scenario;
        let outcome = execute_against(&scenario, &plan, reference, mutation)?;
        self.plans_run += 1;
        self.faults_fired += outcome.faults_fired;
        match plan.primary_crash() {
            Some(FaultSite::Store(_)) => self.store_sites += 1,
            Some(FaultSite::Packet(_)) => self.packet_sites += 1,
            Some(FaultSite::Txn(_)) => self.txn_sites += 1,
            None => {}
        }
        self.recovery_sites += plan.recovery_crashes().len() as u64;
        if plan.heartbeat_delay_ps() > 0 || plan.heartbeat_drop_after().is_some() {
            self.heartbeat_faults += 1;
        }
        if !plan.partition_pairs().is_empty() {
            self.partition_faults += 1;
        }
        self.degraded_commits += outcome.degraded;
        if let Some(outage) = outcome.outage_ps {
            self.max_outage_ps = self.max_outage_ps.max(outage);
        }
        if let Some(violation) = outcome.violation {
            let ShrinkResult {
                plan: shrunk,
                violation: shrunk_violation,
                executions,
            } = shrink(&scenario, reference, mutation, &plan, violation.clone());
            let regression_test = regression_snippet(&scenario, &shrunk, &shrunk_violation);
            self.counterexamples.push(Counterexample {
                scenario: scenario.label(),
                original: plan,
                violation,
                shrunk,
                shrunk_violation,
                shrink_executions: executions,
                regression_test,
            });
        }
        Ok(())
    }
}

/// Sweeps every single-fault point of `scenario`: a crash at each store
/// boundary, each SAN packet boundary (clustered drivers), each
/// transaction boundary, and — against the deepest crash point — a
/// backup crash at each recovery write. Optionally plants a [`Mutation`]
/// in the recovery path (campaign self-tests).
///
/// # Errors
///
/// Returns a [`PlanError`] if the probe runs fail.
pub fn exhaustive_single_fault(
    scenario: &Scenario,
    mutation: Option<Mutation>,
) -> Result<Campaign, PlanError> {
    let reference = Reference::build(scenario);
    let probe = probe(scenario, &reference)?;
    let mut campaign = Campaign::new(scenario, probe);
    for s in 0..probe.stores {
        let plan = FaultPlan::new(vec![FaultEvent::CrashPrimary(FaultSite::Store(s))]);
        campaign.run_plan(&reference, plan, mutation)?;
    }
    if scenario.driver != Driver::Standalone {
        for p in 0..probe.packets {
            let plan = FaultPlan::new(vec![FaultEvent::CrashPrimary(FaultSite::Packet(p))]);
            campaign.run_plan(&reference, plan, mutation)?;
        }
    }
    for t in 0..=scenario.txns {
        let plan = FaultPlan::new(vec![FaultEvent::CrashPrimary(FaultSite::Txn(t))]);
        campaign.run_plan(&reference, plan, mutation)?;
    }
    let deepest = if probe.stores > 0 {
        FaultSite::Store(probe.stores - 1)
    } else {
        FaultSite::Txn(scenario.txns)
    };
    for w in 0..probe.recovery_writes {
        let plan = FaultPlan::new(vec![
            FaultEvent::CrashPrimary(deepest),
            FaultEvent::CrashBackupRecoveryWrite(w),
        ]);
        campaign.run_plan(&reference, plan, mutation)?;
    }
    Ok(campaign)
}

fn random_site(rng: &mut SplitMix64, scenario: &Scenario, probe: &Probe) -> FaultSite {
    let site_kinds = if scenario.driver == Driver::Standalone {
        2
    } else {
        3
    };
    match rng.next_below(site_kinds) {
        0 => FaultSite::Store(rng.next_below(probe.stores.max(1))),
        1 => FaultSite::Txn(rng.next_below(scenario.txns + 1)),
        _ => FaultSite::Packet(rng.next_below(probe.packets.max(1))),
    }
}

/// The directed pairs `scenario`'s strategy moves packets over (empty for
/// non-fabric drivers).
fn fabric_pairs(scenario: &Scenario) -> Vec<(u8, u8)> {
    match scenario.topology() {
        Some(Ok(topology)) => modeled_pairs(topology),
        _ => Vec::new(),
    }
}

fn random_partition(rng: &mut SplitMix64, pairs: &[(u8, u8)], probe: &Probe) -> FaultEvent {
    let (from, to) = pairs[rng.next_below(pairs.len() as u64) as usize];
    if rng.next_below(2) == 0 {
        // Up to 500 us of extra one-way delay.
        FaultEvent::PartitionDelay {
            from,
            to,
            ps: (rng.next_below(500) + 1) * 1_000_000,
        }
    } else {
        FaultEvent::PartitionDropAfter {
            from,
            to,
            n: rng.next_below(probe.packets + 1),
        }
    }
}

fn random_plan(rng: &mut SplitMix64, scenario: &Scenario, probe: &Probe) -> FaultPlan {
    let mut events = Vec::new();
    // Always crash the primary somewhere: fault-free runs are covered by
    // the probe, and every other event depends on a takeover.
    events.push(FaultEvent::CrashPrimary(random_site(rng, scenario, probe)));
    // Half the plans also crash recovery, a quarter twice (double and
    // triple faults). Budgets range past the observed recovery length so
    // some armed faults never fire — that path must stay correct too.
    let budget_range = (probe.recovery_writes.max(1)) * 2;
    let doubles = rng.next_below(4);
    if doubles >= 2 {
        events.push(FaultEvent::CrashBackupRecoveryWrite(
            rng.next_below(budget_range),
        ));
    }
    if doubles == 3 {
        events.push(FaultEvent::CrashBackupRecoveryWrite(
            rng.next_below(budget_range),
        ));
    }
    if scenario.driver != Driver::Standalone {
        if rng.next_below(4) == 0 {
            // Up to 500 us of heartbeat delay.
            events.push(FaultEvent::DelayHeartbeats(
                (rng.next_below(500) + 1) * 1_000_000,
            ));
        }
        if rng.next_below(8) == 0 {
            events.push(FaultEvent::DropHeartbeatsAfter(rng.next_below(32)));
        }
    }
    let pairs = fabric_pairs(scenario);
    if !pairs.is_empty() && rng.next_below(4) == 0 {
        events.push(random_partition(rng, &pairs, probe));
    }
    FaultPlan::new(events)
}

/// Explores `plans` random multi-fault schedules of `scenario`, seeded
/// by `seed`: same seed, same schedules, same outcomes.
///
/// # Errors
///
/// Returns a [`PlanError`] if the probe runs fail.
pub fn random_campaign(
    scenario: &Scenario,
    seed: u64,
    plans: u64,
    mutation: Option<Mutation>,
) -> Result<Campaign, PlanError> {
    let reference = Reference::build(scenario);
    let probe = probe(scenario, &reference)?;
    let mut campaign = Campaign::new(scenario, probe);
    let mut rng = SplitMix64::new(seed);
    for _ in 0..plans {
        let plan = random_plan(&mut rng, scenario, &probe);
        campaign.run_plan(&reference, plan, mutation)?;
    }
    Ok(campaign)
}

/// Explores `plans` seeded schedules of `scenario` in which *every* plan
/// partitions at least one fabric pair — half of them also crash the
/// primary mid-partition. This is the campaign that exercises degraded
/// commits (graceful runs under an unreachable ack set) and
/// partition-plus-crash interplay.
///
/// # Errors
///
/// Returns a [`PlanError`] if the scenario's driver has no fabric (only
/// chain and quorum do), or if the probe runs fail.
pub fn partition_campaign(
    scenario: &Scenario,
    seed: u64,
    plans: u64,
    mutation: Option<Mutation>,
) -> Result<Campaign, PlanError> {
    let pairs = fabric_pairs(scenario);
    if pairs.is_empty() {
        return Err(PlanError::new(
            "partition campaigns need a chain or quorum scenario",
        ));
    }
    let reference = Reference::build(scenario);
    let probe = probe(scenario, &reference)?;
    let mut campaign = Campaign::new(scenario, probe);
    let mut rng = SplitMix64::new(seed);
    for _ in 0..plans {
        let mut events = vec![random_partition(&mut rng, &pairs, &probe)];
        if rng.next_below(2) == 0 {
            events.push(FaultEvent::CrashPrimary(random_site(
                &mut rng, scenario, &probe,
            )));
        }
        campaign.run_plan(&reference, FaultPlan::new(events), mutation)?;
    }
    Ok(campaign)
}
