//! Deterministic fault-injection campaigns over the simulated cluster.
//!
//! The paper's availability argument rests on recovery being correct at
//! *every* crash point, not just the handful a hand-written test picks.
//! This crate turns the injection hooks threaded through the stack —
//! store budgets on the simulated processor ([`Machine`]), packet
//! budgets on the SAN adapter (`TxPort`), arena write budgets on
//! recoverable memory ([`Arena`]), heartbeat distortion in the failure
//! detector — into a small language and an explorer:
//!
//! * [`FaultPlan`] — an ordered crash schedule with a stable text form
//!   (`"crash primary @ packet=7; crash backup @ recovery-write=3"`).
//! * [`execute`] — replays a plan against a [`Scenario`] (driver x
//!   engine version x workload), bit-deterministically, and checks the
//!   outcome against the shadow oracle ([`Reference`]) and the recovery
//!   invariants.
//! * [`exhaustive_single_fault`] / [`random_campaign`] — sweep every
//!   single-fault point of a small run, or explore seeded random
//!   multi-fault schedules of a large one.
//! * [`shrink`] — reduce any failing schedule to a minimal plan, printed
//!   as a copy-pasteable regression test.
//!
//! # Examples
//!
//! Replaying one plan:
//!
//! ```
//! use dsnrep_core::VersionTag;
//! use dsnrep_faultsim::{execute, FaultPlan, Scenario};
//! use dsnrep_workloads::WorkloadKind;
//!
//! let scenario = Scenario::passive(VersionTag::ImprovedLog, WorkloadKind::DebitCredit);
//! let plan: FaultPlan = "crash primary @ txn=2".parse().unwrap();
//! let outcome = execute(&scenario, &plan).unwrap();
//! assert!(outcome.violation.is_none());
//! assert!(outcome.recovered <= 3);
//! ```
//!
//! Sweeping every single-fault point:
//!
//! ```no_run
//! use dsnrep_core::VersionTag;
//! use dsnrep_faultsim::{exhaustive_single_fault, Scenario};
//! use dsnrep_workloads::WorkloadKind;
//!
//! let scenario = Scenario::passive(VersionTag::MirrorDiff, WorkloadKind::DebitCredit);
//! let campaign = exhaustive_single_fault(&scenario, None).unwrap();
//! assert!(campaign.clean(), "{:#?}", campaign.counterexamples);
//! ```
//!
//! [`Machine`]: dsnrep_core::Machine
//! [`Arena`]: dsnrep_rio::Arena

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exec;
mod explore;
mod oracle;
mod plan;
mod scenario;
mod shrink;

pub use exec::{execute, execute_against, silence_fault_panics, Mutation, Outcome, Violation};
pub use explore::{
    exhaustive_single_fault, partition_campaign, probe, random_campaign, Campaign, Counterexample,
    Probe,
};
pub use oracle::{Reference, TAIL_WINDOW};
pub use plan::{FaultEvent, FaultPlan, FaultSite, PlanError};
pub use scenario::{Driver, Scenario};
pub use shrink::{regression_snippet, shrink, ShrinkResult};
