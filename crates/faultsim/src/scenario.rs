//! What a fault plan runs against: driver x version x workload x length.

use std::fmt;

use dsnrep_cluster::{ReplicationStrategy, Topology, TopologyError};
use dsnrep_core::VersionTag;
use dsnrep_workloads::WorkloadKind;

/// Which replication driver hosts the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Driver {
    /// A single node, no replication: crash and recover in place.
    Standalone,
    /// [`PassiveCluster`](dsnrep_repl::PassiveCluster): write doubling,
    /// idle backup CPU.
    Passive,
    /// [`ActiveCluster`](dsnrep_repl::ActiveCluster): redo shipping,
    /// polling backup CPU (always Version 3 on the primary).
    Active,
    /// [`ReplicaSet`](dsnrep_repl::ReplicaSet) running chain replication
    /// at the scenario's RF.
    Chain,
    /// [`ReplicaSet`](dsnrep_repl::ReplicaSet) running R/W quorum
    /// replication at the scenario's RF.
    Quorum,
}

impl Driver {
    /// Short lowercase name used in campaign labels.
    pub fn label(self) -> &'static str {
        match self {
            Driver::Standalone => "standalone",
            Driver::Passive => "passive",
            Driver::Active => "active",
            Driver::Chain => "chain",
            Driver::Quorum => "quorum",
        }
    }
}

impl fmt::Display for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One concrete configuration a [`FaultPlan`](crate::FaultPlan) executes
/// against. Every field participates in determinism: the same scenario
/// plus the same plan replays bit-identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Replication driver.
    pub driver: Driver,
    /// Engine version (ignored by [`Driver::Active`], which is always
    /// Version 3 on the primary).
    pub version: VersionTag,
    /// Benchmark transaction stream.
    pub workload: WorkloadKind,
    /// Transactions the primary attempts.
    pub txns: u64,
    /// Database region length in bytes.
    pub db_len: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Run commits 2-safe (active driver only; passive/standalone runs
    /// are 1-safe like the paper's measurements).
    pub two_safe: bool,
    /// Replication factor (node count). 2 for the classic pair drivers;
    /// ≥ 2 for [`Driver::Chain`] and [`Driver::Quorum`].
    pub rf: u8,
    /// Read-quorum size ([`Driver::Quorum`] only, 0 otherwise).
    pub quorum_read: u8,
    /// Write-quorum size ([`Driver::Quorum`] only, 0 otherwise).
    pub quorum_write: u8,
}

impl Scenario {
    /// A small standalone scenario (the exhaustive-sweep default). The
    /// database is the smallest each benchmark accepts: 64 KiB for
    /// Debit-Credit, one warehouse (1 MiB) for Order-Entry.
    pub fn standalone(version: VersionTag, workload: WorkloadKind) -> Self {
        let db_len = match workload {
            WorkloadKind::DebitCredit => 64 << 10,
            WorkloadKind::OrderEntry => 1 << 20,
        };
        Scenario {
            driver: Driver::Standalone,
            version,
            workload,
            txns: 4,
            db_len,
            seed: 0xD5,
            two_safe: false,
            rf: 2,
            quorum_read: 0,
            quorum_write: 0,
        }
    }

    /// A small passive-cluster scenario.
    pub fn passive(version: VersionTag, workload: WorkloadKind) -> Self {
        Scenario {
            driver: Driver::Passive,
            ..Scenario::standalone(version, workload)
        }
    }

    /// A small active-cluster scenario (primary is always Version 3).
    pub fn active(workload: WorkloadKind) -> Self {
        Scenario {
            driver: Driver::Active,
            ..Scenario::standalone(VersionTag::ImprovedLog, workload)
        }
    }

    /// A small chain-replication scenario at replication factor `rf`.
    pub fn chain(version: VersionTag, workload: WorkloadKind, rf: u8) -> Self {
        Scenario {
            driver: Driver::Chain,
            rf,
            ..Scenario::standalone(version, workload)
        }
    }

    /// A small R/W-quorum scenario at replication factor `rf`.
    pub fn quorum(
        version: VersionTag,
        workload: WorkloadKind,
        rf: u8,
        read: u8,
        write: u8,
    ) -> Self {
        Scenario {
            driver: Driver::Quorum,
            rf,
            quorum_read: read,
            quorum_write: write,
            ..Scenario::standalone(version, workload)
        }
    }

    /// The N-node [`Topology`] this scenario runs, when its driver is a
    /// [`ReplicaSet`](dsnrep_repl::ReplicaSet) one.
    ///
    /// # Errors
    ///
    /// Returns the [`TopologyError`] for an invalid RF or quorum sizes.
    pub fn topology(&self) -> Option<Result<Topology, TopologyError>> {
        match self.driver {
            Driver::Chain => Some(Topology::new(self.rf, ReplicationStrategy::Chain)),
            Driver::Quorum => Some(Topology::new(
                self.rf,
                ReplicationStrategy::Quorum {
                    read: self.quorum_read,
                    write: self.quorum_write,
                },
            )),
            _ => None,
        }
    }

    /// Overrides the transaction count.
    pub fn with_txns(mut self, txns: u64) -> Self {
        self.txns = txns;
        self
    }

    /// Overrides the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Commits 2-safe (meaningful for the active driver only).
    pub fn two_safe(mut self) -> Self {
        self.two_safe = true;
        self
    }

    /// The version index (0-3) used in labels.
    pub fn version_index(&self) -> usize {
        VersionTag::ALL
            .iter()
            .position(|v| *v == self.version)
            .expect("VersionTag::ALL is exhaustive")
    }

    /// A stable, filesystem- and `simdiff`-safe label:
    /// `passive-v1-debit-credit`, `chain-v3-debit-credit-rf3`,
    /// `quorum-v3-debit-credit-rf3-r2w2`. No dots (the flattened metric
    /// paths in `faultcov.json` use dots as separators), and the classic
    /// pair drivers keep their pre-RF labels byte-identical.
    pub fn label(&self) -> String {
        let workload = match self.workload {
            WorkloadKind::DebitCredit => "debit-credit",
            WorkloadKind::OrderEntry => "order-entry",
        };
        let safety = if self.two_safe { "-2safe" } else { "" };
        let shape = match self.driver {
            Driver::Chain => format!("-rf{}", self.rf),
            Driver::Quorum => format!("-rf{}-r{}w{}", self.rf, self.quorum_read, self.quorum_write),
            _ => String::new(),
        };
        format!(
            "{}-v{}-{}{}{}",
            self.driver.label(),
            self.version_index(),
            workload,
            safety,
            shape
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} txns, {} KiB db, seed {})",
            self.label(),
            self.txns,
            self.db_len >> 10,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_dot_free() {
        let s = Scenario::passive(VersionTag::MirrorCopy, WorkloadKind::DebitCredit);
        assert_eq!(s.label(), "passive-v1-debit-credit");
        let a = Scenario::active(WorkloadKind::OrderEntry);
        assert_eq!(a.label(), "active-v3-order-entry");
        assert!(!a.label().contains('.'));
        let mut two = a;
        two.two_safe = true;
        assert_eq!(two.label(), "active-v3-order-entry-2safe");
    }

    #[test]
    fn n_node_labels_carry_the_shape() {
        let c = Scenario::chain(VersionTag::ImprovedLog, WorkloadKind::DebitCredit, 3);
        assert_eq!(c.label(), "chain-v3-debit-credit-rf3");
        let q = Scenario::quorum(VersionTag::ImprovedLog, WorkloadKind::DebitCredit, 3, 2, 2);
        assert_eq!(q.label(), "quorum-v3-debit-credit-rf3-r2w2");
        assert!(c.topology().unwrap().is_ok());
        assert!(q.topology().unwrap().is_ok());
        // Non-intersecting quorums are rejected by the topology layer.
        let bad = Scenario::quorum(VersionTag::ImprovedLog, WorkloadKind::DebitCredit, 3, 1, 1);
        assert!(bad.topology().unwrap().is_err());
    }
}
