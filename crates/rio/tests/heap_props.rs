//! Property tests for the recoverable free-list heap.

use dsnrep_rio::{Arena, FreeListHeap, RawMem};
use dsnrep_simcore::{Addr, Region};
use proptest::prelude::*;

/// A random allocator action.
#[derive(Clone, Debug)]
enum Action {
    Alloc(u16),
    /// Frees the live allocation at this index (mod live count).
    Free(u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (1u16..512).prop_map(Action::Alloc),
        2 => any::<u8>().prop_map(Action::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of allocations and frees: the boundary-tag walk
    /// and free-list stay consistent, live payloads never overlap, and
    /// payload contents are never disturbed by other operations.
    #[test]
    fn heap_invariants_hold(actions in prop::collection::vec(action_strategy(), 1..120)) {
        let cap: u64 = 1 << 16;
        let mut arena = Arena::new(cap);
        let region = Region::new(Addr::new(0), cap);
        let heap = {
            let mut mem = RawMem::new(&mut arena);
            FreeListHeap::format(&mut mem, region)
        };

        // (payload, size, fill byte)
        let mut live: Vec<(Addr, u64, u8)> = Vec::new();
        let mut fill: u8 = 0;

        for action in &actions {
            let mut mem = RawMem::new(&mut arena);
            match action {
                Action::Alloc(size) => {
                    let size = u64::from(*size);
                    if let Ok(p) = heap.alloc(&mut mem, size) {
                        // No overlap with any live allocation.
                        let r = Region::new(p, size);
                        for (q, qs, _) in &live {
                            prop_assert!(!r.overlaps(Region::new(*q, *qs)),
                                "new allocation {r} overlaps live {q}+{qs}");
                        }
                        fill = fill.wrapping_add(1);
                        mem.arena().write(p, &vec![fill; size as usize]);
                        live.push((p, size, fill));
                    }
                }
                Action::Free(idx) => {
                    if !live.is_empty() {
                        let i = *idx as usize % live.len();
                        let (p, size, expected) = live.swap_remove(i);
                        // Contents survived all interleaved operations.
                        let data = mem.arena().read_vec(p, size as usize);
                        prop_assert!(data.iter().all(|&b| b == expected),
                            "payload at {p} was disturbed");
                        heap.free(&mut mem, p);
                    }
                }
            }
        }

        let mut mem = RawMem::new(&mut arena);
        let stats = heap.check_consistency(&mut mem)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(stats.live_allocs, live.len() as u64);

        // Free everything; the heap must coalesce back to a single block.
        for (p, _, _) in live {
            heap.free(&mut mem, p);
        }
        let stats = heap.check_consistency(&mut mem)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(stats.live_allocs, 0);
        prop_assert_eq!(stats.free_blocks, 1);
        prop_assert_eq!(stats.blocks, 1);
    }

    /// The heap handle can be dropped and re-attached (a crash/reboot) at
    /// any point without losing consistency.
    #[test]
    fn heap_survives_reattach(count in 1usize..40) {
        let cap: u64 = 1 << 15;
        let mut arena = Arena::new(cap);
        let region = Region::new(Addr::new(0), cap);
        let heap = {
            let mut mem = RawMem::new(&mut arena);
            FreeListHeap::format(&mut mem, region)
        };
        let mut live = Vec::new();
        for i in 0..count {
            let mut mem = RawMem::new(&mut arena);
            if let Ok(p) = heap.alloc(&mut mem, (i as u64 % 96) + 8) {
                live.push(p);
            }
        }
        // "Crash": only the arena survives.
        let heap = FreeListHeap::attach(region);
        let mut mem = RawMem::new(&mut arena);
        let stats = heap.check_consistency(&mut mem)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(stats.live_allocs, live.len() as u64);
        for p in live {
            heap.free(&mut mem, p);
        }
        prop_assert_eq!(heap.stats(&mut mem).live_allocs, 0);
    }
}
