//! Recoverable memory for the DSN-2000 replication reproduction.
//!
//! This crate substitutes for the **Rio reliable memory** system (Chen et
//! al., ASPLOS '96) that Vista builds on: main memory whose contents survive
//! power failures and operating-system crashes. The paper relies on two
//! properties only — stores to recoverable memory are durable at store
//! granularity, and recovery code can walk the surviving bytes — and this
//! crate provides exactly those:
//!
//! * [`Arena`] — a lazily paged, crash-surviving byte space addressed by
//!   `Addr` offsets (from `dsnrep-simcore`).
//! * [`Layout`] / [`LayoutBuilder`] — the named-region map and persistent
//!   root slots through which recovery re-attaches after a crash.
//! * [`FreeListHeap`] — a boundary-tag heap *inside* the arena whose
//!   metadata writes are observable (they are most of the paper's Table 2
//!   traffic).
//!
//! Crash simulation is intentionally trivial: a crash is the act of dropping
//! every volatile structure and keeping the [`Arena`]. The `dsnrep-core`
//! crate's `Machine` models the volatile side (caches, clocks).
//!
//! # Examples
//!
//! ```
//! use dsnrep_rio::{Arena, Layout, LayoutBuilder, RegionId};
//!
//! let layout = LayoutBuilder::new()
//!     .region(RegionId::Database, 64 * 1024)
//!     .region(RegionId::UndoLog, 16 * 1024)
//!     .build();
//! let mut arena = Arena::new(layout.arena_len());
//! layout.format(&mut arena);
//!
//! // ... a crash is: keep `arena`, drop everything else ...
//! let recovered = Layout::read(&arena)?;
//! assert_eq!(recovered, layout);
//! # Ok::<(), dsnrep_rio::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod arena;
mod layout;

pub use alloc::{AllocMem, FreeListHeap, HeapCorruption, HeapStats, OutOfMemory};
pub use arena::{Arena, PAGE_SIZE};
pub use layout::{Layout, LayoutBuilder, LayoutError, RegionId, RootSlot, HEADER_LEN};

use dsnrep_simcore::Addr;

/// An [`AllocMem`] over a bare arena that charges no costs.
///
/// Used by recovery code (which runs on the failure path, not the measured
/// path), by test oracles, and by this crate's own tests.
///
/// # Examples
///
/// ```
/// use dsnrep_rio::{Arena, RawMem, AllocMem};
/// use dsnrep_simcore::Addr;
///
/// let mut arena = Arena::new(4096);
/// let mut mem = RawMem::new(&mut arena);
/// mem.write_u64(Addr::new(16), 99);
/// assert_eq!(mem.read_u64(Addr::new(16)), 99);
/// ```
#[derive(Debug)]
pub struct RawMem<'a> {
    arena: &'a mut Arena,
}

impl<'a> RawMem<'a> {
    /// Wraps an arena.
    pub fn new(arena: &'a mut Arena) -> Self {
        RawMem { arena }
    }

    /// The underlying arena.
    pub fn arena(&mut self) -> &mut Arena {
        self.arena
    }
}

impl AllocMem for RawMem<'_> {
    fn read_u64(&mut self, addr: Addr) -> u64 {
        self.arena.read_u64(addr)
    }

    fn write_u64(&mut self, addr: Addr, value: u64) {
        self.arena.write_u64(addr, value)
    }
}
