//! The recoverable-memory arena.
//!
//! An [`Arena`] stands in for Rio reliable memory: a flat byte space whose
//! contents survive a simulated crash. Pages are allocated lazily, so a
//! "1 GB database" experiment only materializes the pages it actually
//! touches (the paper's Table 8 sweeps database sizes up to 1 GB).
//!
//! The arena is deliberately *dumb*: it stores bytes. All cost accounting
//! (cache model, write doubling) happens in the layers above, which is what
//! lets recovery code and test oracles read arenas for free.

use core::fmt;

use dsnrep_simcore::{copy_small, Addr, Region};

/// Size of a lazily allocated arena page.
pub const PAGE_SIZE: usize = 64 * 1024;

/// A flat, lazily paged, crash-surviving byte space.
///
/// Untouched bytes read as zero, mirroring freshly mapped recoverable
/// memory.
///
/// # Examples
///
/// ```
/// use dsnrep_rio::Arena;
/// use dsnrep_simcore::Addr;
///
/// let mut arena = Arena::new(1 << 20);
/// arena.write(Addr::new(4096), b"hello");
/// let mut buf = [0u8; 5];
/// arena.read_into(Addr::new(4096), &mut buf);
/// assert_eq!(&buf, b"hello");
/// assert_eq!(arena.read_u64(Addr::new(0)), 0); // untouched bytes are zero
/// ```
#[derive(Clone)]
pub struct Arena {
    pages: Vec<Option<Box<[u8]>>>,
    len: u64,
    /// Count of `Some` pages, so [`pages_touched`](Arena::pages_touched)
    /// (called from `Debug` formatting inside hot loops when tracing) is
    /// O(1) instead of a scan of the page vector.
    touched: usize,
    /// Monotone count of [`Arena::write`] calls. Every mutation funnels
    /// through `write`, so this counter enumerates the halt points the
    /// fault-injection layer can crash at — including recovery-procedure
    /// writes that bypass the machine's store accounting.
    writes: u64,
    /// Armed fault: remaining writes before a simulated halt.
    write_budget: Option<u64>,
    /// Whether an armed budget actually tripped (a write was attempted
    /// with the budget at zero). Distinct from the budget *reaching*
    /// zero: spending the last unit on a successful write has not halted
    /// anything yet.
    halted: bool,
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("len", &self.len)
            .field("pages_touched", &self.pages_touched())
            .finish()
    }
}

impl Arena {
    /// Creates an arena of `len` addressable bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "arena must not be empty");
        let pages = len.div_ceil(PAGE_SIZE as u64);
        Arena {
            pages: vec![None; usize::try_from(pages).expect("arena too large")],
            len,
            touched: 0,
            writes: 0,
            write_budget: None,
            halted: false,
        }
    }

    /// Monotone count of [`Arena::write`] calls since construction (clones
    /// inherit the count). Recovery procedures mutate the arena directly,
    /// so deltas of this counter enumerate mid-recovery crash points.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Arms a fault: the arena halts (panics) when `budget` more writes
    /// have been attempted; `0` halts on the very next write. The halting
    /// write does **not** mutate the arena.
    pub fn inject_halt_after_writes(&mut self, budget: u64) {
        self.write_budget = Some(budget);
    }

    /// Whether an armed write budget tripped: a write was attempted with
    /// no budget left (and panicked without mutating the arena).
    #[inline]
    pub fn has_halted(&self) -> bool {
        self.halted
    }

    /// Disarms any pending (or tripped) write-budget fault, e.g. before
    /// resuming recovery over a surviving arena.
    pub fn clear_halt(&mut self) {
        self.write_budget = None;
        self.halted = false;
    }

    /// Consumes one unit of the armed write budget, halting at zero.
    #[inline]
    fn consume_write_budget(&mut self) {
        match &mut self.write_budget {
            None => {}
            Some(0) => {
                self.halted = true;
                panic!("dsnrep fault injection: simulated halt mid-write");
            }
            Some(budget) => *budget -= 1,
        }
    }

    /// Total addressable bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the arena has zero length (never: construction
    /// forbids it), present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages that have been materialized by writes.
    #[inline]
    pub fn pages_touched(&self) -> usize {
        self.touched
    }

    #[inline]
    fn check(&self, addr: Addr, len: usize) {
        let end = addr
            .as_u64()
            .checked_add(len as u64)
            .expect("address overflow");
        assert!(
            end <= self.len,
            "arena access out of bounds: {} + {} bytes > arena length {}",
            addr,
            len,
            self.len
        );
    }

    /// Writes `bytes` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the arena.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        self.consume_write_budget();
        self.writes += 1;
        self.check(addr, bytes.len());
        let off = addr.as_usize();
        let page_off = off % PAGE_SIZE;
        // Fast path: the write stays inside one page (virtually all
        // simulated stores are word-sized); `copy_small` keeps these
        // copies inline instead of calling libc.
        if bytes.len() <= PAGE_SIZE - page_off {
            let slot = &mut self.pages[off / PAGE_SIZE];
            let page = match slot {
                Some(page) => page,
                None => {
                    self.touched += 1;
                    slot.insert(vec![0u8; PAGE_SIZE].into_boxed_slice())
                }
            };
            copy_small(&mut page[page_off..page_off + bytes.len()], bytes);
            return;
        }
        let mut off = off;
        let mut src = bytes;
        while !src.is_empty() {
            let page_idx = off / PAGE_SIZE;
            let page_off = off % PAGE_SIZE;
            let n = (PAGE_SIZE - page_off).min(src.len());
            let slot = &mut self.pages[page_idx];
            if slot.is_none() {
                *slot = Some(vec![0u8; PAGE_SIZE].into_boxed_slice());
                self.touched += 1;
            }
            let page = slot.as_mut().expect("just materialized");
            page[page_off..page_off + n].copy_from_slice(&src[..n]);
            src = &src[n..];
            off += n;
        }
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the arena.
    pub fn read_into(&self, addr: Addr, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let off = addr.as_usize();
        let page_off = off % PAGE_SIZE;
        // Fast path mirroring `write`: single-page reads stay inline.
        if buf.len() <= PAGE_SIZE - page_off {
            match &self.pages[off / PAGE_SIZE] {
                Some(page) => copy_small(buf, &page[page_off..page_off + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        let mut off = off;
        let mut dst: &mut [u8] = buf;
        while !dst.is_empty() {
            let page_idx = off / PAGE_SIZE;
            let page_off = off % PAGE_SIZE;
            let n = (PAGE_SIZE - page_off).min(dst.len());
            match &self.pages[page_idx] {
                Some(page) => dst[..n].copy_from_slice(&page[page_off..page_off + n]),
                None => dst[..n].fill(0),
            }
            let rest = core::mem::take(&mut dst);
            dst = &mut rest[n..];
            off += n;
        }
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read_into(addr, &mut v);
        v
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_into(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `i64` at `addr`.
    pub fn read_i64(&self, addr: Addr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes a little-endian `i64` at `addr`.
    pub fn write_i64(&mut self, addr: Addr, value: i64) {
        self.write_u64(addr, value as u64)
    }

    /// Copies `len` bytes from `src` to `dst` within the arena. Ranges may
    /// not overlap.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds or if they overlap.
    pub fn copy(&mut self, src: Addr, dst: Addr, len: usize) {
        assert!(
            !Region::new(src, len as u64).overlaps(Region::new(dst, len as u64)),
            "arena copy ranges overlap"
        );
        let data = self.read_vec(src, len);
        self.write(dst, &data);
    }

    /// Returns the whole region's bytes; intended for test oracles on small
    /// regions.
    pub fn region_vec(&self, region: Region) -> Vec<u8> {
        self.read_vec(
            region.start(),
            usize::try_from(region.len()).expect("region too large"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let a = Arena::new(PAGE_SIZE as u64 * 3);
        assert_eq!(a.read_vec(Addr::new(12345), 16), vec![0u8; 16]);
        assert_eq!(a.pages_touched(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut a = Arena::new(1 << 16);
        a.write(Addr::new(100), &[1, 2, 3, 4]);
        assert_eq!(a.read_vec(Addr::new(99), 6), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut a = Arena::new(PAGE_SIZE as u64 * 2);
        let addr = Addr::new(PAGE_SIZE as u64 - 3);
        a.write(addr, b"abcdef");
        assert_eq!(a.read_vec(addr, 6), b"abcdef");
        assert_eq!(a.pages_touched(), 2);
    }

    #[test]
    fn typed_accessors() {
        let mut a = Arena::new(1 << 12);
        a.write_u64(Addr::new(8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(a.read_u64(Addr::new(8)), 0xDEAD_BEEF_CAFE_F00D);
        a.write_u32(Addr::new(0), 77);
        assert_eq!(a.read_u32(Addr::new(0)), 77);
        a.write_i64(Addr::new(16), -42);
        assert_eq!(a.read_i64(Addr::new(16)), -42);
    }

    #[test]
    fn copy_non_overlapping() {
        let mut a = Arena::new(1 << 12);
        a.write(Addr::new(0), b"xyz");
        a.copy(Addr::new(0), Addr::new(100), 3);
        assert_eq!(a.read_vec(Addr::new(100), 3), b"xyz");
    }

    #[test]
    #[should_panic]
    fn copy_overlapping_panics() {
        let mut a = Arena::new(1 << 12);
        a.copy(Addr::new(0), Addr::new(4), 8);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut a = Arena::new(64);
        a.write(Addr::new(60), &[0u8; 8]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let a = Arena::new(64);
        let mut buf = [0u8; 8];
        a.read_into(Addr::new(60), &mut buf);
    }

    #[test]
    fn lazily_pages() {
        let mut a = Arena::new(1 << 30); // 1 GB address space
        a.write(Addr::new(1 << 29), &[9]);
        assert_eq!(a.pages_touched(), 1);
        assert_eq!(a.read_vec(Addr::new(1 << 29), 1), vec![9]);
    }

    #[test]
    fn pages_touched_counter_is_stable() {
        let mut a = Arena::new(PAGE_SIZE as u64 * 4);
        a.write(Addr::new(0), &[1]);
        a.write(Addr::new(1), &[2]); // same page: not a new materialization
        assert_eq!(a.pages_touched(), 1);
        a.write(Addr::new(PAGE_SIZE as u64 * 3), &[3]);
        assert_eq!(a.pages_touched(), 2);
        assert_eq!(a.clone().pages_touched(), 2);
    }

    #[test]
    fn write_counter_is_monotone_and_cloned() {
        let mut a = Arena::new(1 << 12);
        assert_eq!(a.writes(), 0);
        a.write(Addr::new(0), &[1]);
        a.write_u64(Addr::new(8), 7);
        a.copy(Addr::new(0), Addr::new(64), 1); // one write
        assert_eq!(a.writes(), 3);
        assert_eq!(a.clone().writes(), 3);
    }

    #[test]
    fn write_budget_halts_at_the_exact_write() {
        let mut a = Arena::new(1 << 12);
        a.inject_halt_after_writes(2);
        a.write(Addr::new(0), &[1]);
        a.write(Addr::new(1), &[2]);
        assert!(!a.has_halted());
        let err = std::panic::catch_unwind(core::panic::AssertUnwindSafe(|| {
            a.write(Addr::new(2), &[3]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("fault injection"), "unexpected panic: {msg}");
        assert!(a.has_halted());
        // The halting write mutated nothing and did not count.
        assert_eq!(a.read_vec(Addr::new(2), 1), vec![0]);
        assert_eq!(a.writes(), 2);
        a.clear_halt();
        a.write(Addr::new(2), &[3]);
        assert_eq!(a.read_vec(Addr::new(0), 3), vec![1, 2, 3]);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Arena::new(1 << 12);
        a.write(Addr::new(0), &[5]);
        let b = a.clone();
        a.write(Addr::new(0), &[6]);
        assert_eq!(b.read_vec(Addr::new(0), 1), vec![5]);
    }
}
