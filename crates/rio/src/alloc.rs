//! An accounted free-list heap inside recoverable memory.
//!
//! Version 0 (the unmodified Vista library) allocates its undo records and
//! their data areas from a heap that itself lives in recoverable memory.
//! The paper's Table 2 shows why that matters: in the straightforward
//! primary-backup port, *heap and list metadata* account for 6708 of the
//! 7172 MB written through for Debit-Credit. To reproduce that, this heap is
//! a real boundary-tag allocator whose every metadata word is written through
//! an [`AllocMem`], so the layers above can charge cache costs and double the
//! writes to the backup.
//!
//! Design: classic first-fit with boundary tags. Every block has a 16-byte
//! header `{size|flags, prev_size}`; free blocks additionally carry
//! `{next, prev}` free-list links in their payload. Freeing coalesces with
//! both neighbours.

use core::fmt;
use std::error::Error;

use dsnrep_simcore::{Addr, Region};

/// Memory accessed by the allocator. Implementations charge cache costs and
/// (in primary-backup mode) double the writes to the backup as metadata
/// traffic.
pub trait AllocMem {
    /// Reads a little-endian `u64`.
    fn read_u64(&mut self, addr: Addr) -> u64;
    /// Writes a little-endian `u64`.
    fn write_u64(&mut self, addr: Addr, value: u64);
}

/// The allocation failure error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The payload size that could not be satisfied.
    pub requested: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recoverable heap cannot satisfy a {}-byte allocation",
            self.requested
        )
    }
}

impl Error for OutOfMemory {}

/// A heap-consistency violation found by [`FreeListHeap::check_consistency`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapCorruption(String);

impl fmt::Display for HeapCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heap corruption: {}", self.0)
    }
}

impl Error for HeapCorruption {}

/// Aggregate heap statistics, read back from the persistent root words.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of live allocations.
    pub live_allocs: u64,
    /// Payload bytes currently allocated.
    pub bytes_in_use: u64,
    /// Total blocks walked (allocated + free).
    pub blocks: u64,
    /// Free blocks on the list.
    pub free_blocks: u64,
}

const ROOT_WORDS: u64 = 6;
const IN_USE: u64 = 1;
const SIZE_MASK: u64 = !7;
const HDR: u64 = 16;
const MIN_BLOCK: u64 = 32;

/// A first-fit boundary-tag allocator over a heap [`Region`].
///
/// The struct itself is a cheap handle: all allocator state (free-list head,
/// statistics) lives in the region, so it survives crashes and is visible to
/// the backup.
///
/// # Examples
///
/// ```
/// use dsnrep_rio::{Arena, FreeListHeap, RawMem};
/// use dsnrep_simcore::{Addr, Region};
///
/// let mut arena = Arena::new(1 << 16);
/// let mut mem = RawMem::new(&mut arena);
/// let heap = FreeListHeap::format(&mut mem, Region::new(Addr::new(0), 1 << 16));
/// let a = heap.alloc(&mut mem, 100)?;
/// let b = heap.alloc(&mut mem, 200)?;
/// assert_ne!(a, b);
/// heap.free(&mut mem, a);
/// heap.free(&mut mem, b);
/// assert_eq!(heap.stats(&mut mem).live_allocs, 0);
/// # Ok::<(), dsnrep_rio::OutOfMemory>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeListHeap {
    region: Region,
}

impl FreeListHeap {
    /// Formats `region` as an empty heap and returns a handle.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small to hold the roots and one minimum
    /// block.
    pub fn format<M: AllocMem>(mem: &mut M, region: Region) -> Self {
        assert!(
            region.len() >= ROOT_WORDS * 8 + MIN_BLOCK,
            "heap region too small: {} bytes",
            region.len()
        );
        let heap = FreeListHeap { region };
        let first = heap.first_block();
        let cap = (heap.end().as_u64() - first.as_u64()) & SIZE_MASK;
        // Roots: [magic][free_head][live_allocs][frees][bytes_in_use][cap]
        mem.write_u64(region.start(), 0x4845_4150); // "HEAP"
        mem.write_u64(heap.head_addr(), first.as_u64());
        mem.write_u64(heap.live_addr(), 0);
        mem.write_u64(heap.frees_addr(), 0);
        mem.write_u64(heap.in_use_addr(), 0);
        mem.write_u64(region.start() + 40, cap);
        // One big free block.
        mem.write_u64(first, cap);
        mem.write_u64(first + 8, 0); // prev_size: none
        mem.write_u64(first + 16, 0); // next
        mem.write_u64(first + 24, 0); // prev
        heap
    }

    /// Re-attaches to a previously formatted heap (e.g. after a crash).
    pub fn attach(region: Region) -> Self {
        FreeListHeap { region }
    }

    /// The heap region.
    pub fn region(&self) -> Region {
        self.region
    }

    fn head_addr(&self) -> Addr {
        self.region.start() + 8
    }
    fn live_addr(&self) -> Addr {
        self.region.start() + 16
    }
    fn frees_addr(&self) -> Addr {
        self.region.start() + 24
    }
    fn in_use_addr(&self) -> Addr {
        self.region.start() + 32
    }
    fn first_block(&self) -> Addr {
        (self.region.start() + ROOT_WORDS * 8).align_up(8)
    }
    fn end(&self) -> Addr {
        self.region.end()
    }

    fn unlink<M: AllocMem>(&self, mem: &mut M, block: Addr) {
        let next = mem.read_u64(block + 16);
        let prev = mem.read_u64(block + 24);
        if prev == 0 {
            mem.write_u64(self.head_addr(), next);
        } else {
            mem.write_u64(Addr::new(prev) + 16, next);
        }
        if next != 0 {
            mem.write_u64(Addr::new(next) + 24, prev);
        }
    }

    fn push<M: AllocMem>(&self, mem: &mut M, block: Addr) {
        let old = mem.read_u64(self.head_addr());
        mem.write_u64(block + 16, old);
        mem.write_u64(block + 24, 0);
        if old != 0 {
            mem.write_u64(Addr::new(old) + 24, block.as_u64());
        }
        mem.write_u64(self.head_addr(), block.as_u64());
    }

    /// Allocates `size` payload bytes, returning the payload address.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if no free block can satisfy the request.
    pub fn alloc<M: AllocMem>(&self, mem: &mut M, size: u64) -> Result<Addr, OutOfMemory> {
        let need = (HDR + size.max(16) + 7) & SIZE_MASK;
        // First fit.
        let mut cursor = mem.read_u64(self.head_addr());
        let block = loop {
            if cursor == 0 {
                return Err(OutOfMemory { requested: size });
            }
            let b = Addr::new(cursor);
            let bsize = mem.read_u64(b) & SIZE_MASK;
            if bsize >= need {
                break b;
            }
            cursor = mem.read_u64(b + 16);
        };
        let bsize = mem.read_u64(block) & SIZE_MASK;
        self.unlink(mem, block);
        let mut taken = bsize;
        if bsize - need >= MIN_BLOCK {
            // Split: the tail becomes a new free block.
            taken = need;
            let rem = block + need;
            let rem_size = bsize - need;
            mem.write_u64(rem, rem_size);
            mem.write_u64(rem + 8, need);
            self.push(mem, rem);
            let after = rem + rem_size;
            if after < self.end() {
                mem.write_u64(after + 8, rem_size);
            }
        }
        mem.write_u64(block, taken | IN_USE);
        // Heap statistics (Vista keeps equivalents; they are metadata writes).
        let live = mem.read_u64(self.live_addr());
        mem.write_u64(self.live_addr(), live + 1);
        let used = mem.read_u64(self.in_use_addr());
        mem.write_u64(self.in_use_addr(), used + taken);
        Ok(block + HDR)
    }

    /// Frees the allocation whose payload starts at `payload`, coalescing
    /// with free neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `payload` does not point at a live allocation from this
    /// heap.
    pub fn free<M: AllocMem>(&self, mem: &mut M, payload: Addr) {
        let mut block = payload - HDR;
        assert!(
            block >= self.first_block() && block < self.end(),
            "free of foreign pointer {payload}"
        );
        let sf = mem.read_u64(block);
        assert!(sf & IN_USE != 0, "double free at {payload}");
        let mut size = sf & SIZE_MASK;

        let taken = size;

        // Coalesce with the following block.
        let next = block + size;
        if next < self.end() {
            let nsf = mem.read_u64(next);
            if nsf & IN_USE == 0 {
                self.unlink(mem, next);
                size += nsf & SIZE_MASK;
            }
        }
        // Coalesce with the preceding block.
        let prev_size = mem.read_u64(block + 8);
        if prev_size != 0 {
            let prev = block - prev_size;
            let psf = mem.read_u64(prev);
            if psf & IN_USE == 0 {
                self.unlink(mem, prev);
                block = prev;
                size += psf & SIZE_MASK;
            }
        }
        mem.write_u64(block, size);
        let after = block + size;
        if after < self.end() {
            mem.write_u64(after + 8, size);
        }
        self.push(mem, block);
        let live = mem.read_u64(self.live_addr());
        mem.write_u64(self.live_addr(), live - 1);
        let frees = mem.read_u64(self.frees_addr());
        mem.write_u64(self.frees_addr(), frees + 1);
        let used = mem.read_u64(self.in_use_addr());
        mem.write_u64(self.in_use_addr(), used - taken);
    }

    /// Reads back the persistent statistics plus a block-walk census.
    pub fn stats<M: AllocMem>(&self, mem: &mut M) -> HeapStats {
        let mut blocks = 0;
        let mut free_blocks = 0;
        let mut b = self.first_block();
        while b < self.end() {
            let sf = mem.read_u64(b);
            blocks += 1;
            if sf & IN_USE == 0 {
                free_blocks += 1;
            }
            let size = sf & SIZE_MASK;
            if size == 0 {
                break;
            }
            b = b + size;
        }
        HeapStats {
            live_allocs: mem.read_u64(self.live_addr()),
            bytes_in_use: mem.read_u64(self.in_use_addr()),
            blocks,
            free_blocks,
        }
    }

    /// Walks the whole heap and verifies the boundary-tag and free-list
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns [`HeapCorruption`] describing the first violation found.
    pub fn check_consistency<M: AllocMem>(&self, mem: &mut M) -> Result<HeapStats, HeapCorruption> {
        let mut prev_size = 0u64;
        let mut free_walk = 0u64;
        let mut b = self.first_block();
        let mut blocks = 0u64;
        while b < self.end() {
            let sf = mem.read_u64(b);
            let size = sf & SIZE_MASK;
            if size < MIN_BLOCK {
                return Err(HeapCorruption(format!("block at {b} has size {size}")));
            }
            let recorded_prev = mem.read_u64(b + 8);
            if recorded_prev != prev_size {
                return Err(HeapCorruption(format!(
                    "block at {b}: prev_size {recorded_prev}, expected {prev_size}"
                )));
            }
            if sf & IN_USE == 0 {
                free_walk += 1;
            }
            prev_size = size;
            b = b + size;
            blocks += 1;
        }
        if b != self.end().align_down(8) && b != self.end() {
            return Err(HeapCorruption(format!(
                "walk ended at {b}, heap ends at {}",
                self.end()
            )));
        }
        // Count the free list and cross-check.
        let mut list = 0u64;
        let mut cursor = mem.read_u64(self.head_addr());
        let mut hops = 0;
        while cursor != 0 {
            let c = Addr::new(cursor);
            if mem.read_u64(c) & IN_USE != 0 {
                return Err(HeapCorruption(format!("allocated block {c} on free list")));
            }
            list += 1;
            cursor = mem.read_u64(c + 16);
            hops += 1;
            if hops > blocks + 1 {
                return Err(HeapCorruption("free list cycle".to_string()));
            }
        }
        if list != free_walk {
            return Err(HeapCorruption(format!(
                "free list has {list} blocks, walk found {free_walk}"
            )));
        }
        Ok(HeapStats {
            live_allocs: mem.read_u64(self.live_addr()),
            bytes_in_use: mem.read_u64(self.in_use_addr()),
            blocks,
            free_blocks: free_walk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use crate::RawMem;

    fn heap(cap: u64) -> (Arena, FreeListHeap) {
        let mut arena = Arena::new(cap);
        let region = Region::new(Addr::new(0), cap);
        let h = {
            let mut mem = RawMem::new(&mut arena);
            FreeListHeap::format(&mut mem, region)
        };
        (arena, h)
    }

    #[test]
    fn alloc_free_round_trip() {
        let (mut arena, h) = heap(1 << 14);
        let mut mem = RawMem::new(&mut arena);
        let a = h.alloc(&mut mem, 64).unwrap();
        let b = h.alloc(&mut mem, 64).unwrap();
        assert!(b.as_u64() >= a.as_u64() + 64);
        h.free(&mut mem, a);
        h.free(&mut mem, b);
        let stats = h.check_consistency(&mut mem).unwrap();
        assert_eq!(stats.live_allocs, 0);
        assert_eq!(stats.free_blocks, 1, "full coalescing back to one block");
    }

    #[test]
    fn coalescing_in_both_directions() {
        let (mut arena, h) = heap(1 << 14);
        let mut mem = RawMem::new(&mut arena);
        let blocks: Vec<Addr> = (0..4).map(|_| h.alloc(&mut mem, 48).unwrap()).collect();
        // Free middle two in both orders: prev and next coalescing paths.
        h.free(&mut mem, blocks[1]);
        h.free(&mut mem, blocks[2]);
        h.free(&mut mem, blocks[0]);
        h.free(&mut mem, blocks[3]);
        let stats = h.check_consistency(&mut mem).unwrap();
        assert_eq!(stats.free_blocks, 1);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let (mut arena, h) = heap(256);
        let mut mem = RawMem::new(&mut arena);
        let err = h.alloc(&mut mem, 10_000).unwrap_err();
        assert_eq!(err.requested, 10_000);
        assert!(err.to_string().contains("10000-byte"));
    }

    #[test]
    fn exhaustion_then_reuse() {
        let (mut arena, h) = heap(4096);
        let mut mem = RawMem::new(&mut arena);
        let mut held = Vec::new();
        while let Ok(p) = h.alloc(&mut mem, 100) {
            held.push(p);
        }
        assert!(held.len() >= 20);
        for p in held.drain(..) {
            h.free(&mut mem, p);
        }
        // Everything is reusable again.
        assert!(h.alloc(&mut mem, 2000).is_ok());
        h.check_consistency(&mut mem).unwrap();
    }

    #[test]
    fn payloads_do_not_overlap() {
        let (mut arena, h) = heap(1 << 14);
        let mut mem = RawMem::new(&mut arena);
        let sizes = [8u64, 100, 17, 250, 32, 64];
        let mut spans: Vec<Region> = Vec::new();
        for &s in &sizes {
            let p = h.alloc(&mut mem, s).unwrap();
            let r = Region::new(p, s);
            for other in &spans {
                assert!(!r.overlaps(*other));
            }
            spans.push(r);
        }
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let (mut arena, h) = heap(1 << 12);
        let mut mem = RawMem::new(&mut arena);
        let p = h.alloc(&mut mem, 32).unwrap();
        h.free(&mut mem, p);
        h.free(&mut mem, p);
    }

    #[test]
    fn stats_track_bytes() {
        let (mut arena, h) = heap(1 << 13);
        let mut mem = RawMem::new(&mut arena);
        let p = h.alloc(&mut mem, 100).unwrap();
        let s = h.stats(&mut mem);
        assert_eq!(s.live_allocs, 1);
        assert!(s.bytes_in_use >= 100);
        h.free(&mut mem, p);
        let s = h.stats(&mut mem);
        assert_eq!(s.live_allocs, 0);
        assert_eq!(s.bytes_in_use, 0);
    }

    #[test]
    fn attach_sees_existing_heap() {
        let (mut arena, h) = heap(1 << 13);
        let p = {
            let mut mem = RawMem::new(&mut arena);
            h.alloc(&mut mem, 64).unwrap()
        };
        // Simulate reboot: a new handle over the same region.
        let h2 = FreeListHeap::attach(Region::new(Addr::new(0), 1 << 13));
        let mut mem = RawMem::new(&mut arena);
        assert_eq!(h2.stats(&mut mem).live_allocs, 1);
        h2.free(&mut mem, p);
        h2.check_consistency(&mut mem).unwrap();
    }
}
