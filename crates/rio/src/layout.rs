//! Arena layout: the region table and recovery roots.
//!
//! Both primary and backup format their arenas with the *same* [`Layout`],
//! which is what makes arena offsets meaningful across the cluster. The
//! layout itself is stored in the arena header so that recovery — on the
//! same node after a reboot, or on the backup after a takeover — can
//! re-attach to the persistent structures without any volatile state.

use core::fmt;
use std::error::Error;

use dsnrep_simcore::{Addr, Region};

use crate::arena::Arena;

/// Identifies a named region within the arena layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionId {
    /// The arena header: magic, root slots, region table.
    Header,
    /// The set-range record array (Versions 1 and 2) or other fixed-slot
    /// transaction descriptors.
    Ranges,
    /// The undo log: heap-allocated records (Version 0) or the contiguous
    /// inline log (Version 3).
    UndoLog,
    /// The mirror copy of the database (Versions 1 and 2).
    Mirror,
    /// The free-list heap (Version 0 allocates undo records here).
    Heap,
    /// The database proper.
    Database,
    /// The redo ring consumed by an active backup.
    RedoRing,
    /// Scratch space for tests and tools.
    Scratch,
}

impl RegionId {
    const ALL: [RegionId; 8] = [
        RegionId::Header,
        RegionId::Ranges,
        RegionId::UndoLog,
        RegionId::Mirror,
        RegionId::Heap,
        RegionId::Database,
        RegionId::RedoRing,
        RegionId::Scratch,
    ];

    fn code(self) -> u64 {
        match self {
            RegionId::Header => 0,
            RegionId::Ranges => 1,
            RegionId::UndoLog => 2,
            RegionId::Mirror => 3,
            RegionId::Heap => 4,
            RegionId::Database => 5,
            RegionId::RedoRing => 6,
            RegionId::Scratch => 7,
        }
    }

    fn from_code(code: u64) -> Option<RegionId> {
        RegionId::ALL.iter().copied().find(|id| id.code() == code)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegionId::Header => "header",
            RegionId::Ranges => "ranges",
            RegionId::UndoLog => "undo-log",
            RegionId::Mirror => "mirror",
            RegionId::Heap => "heap",
            RegionId::Database => "database",
            RegionId::RedoRing => "redo-ring",
            RegionId::Scratch => "scratch",
        };
        f.write_str(name)
    }
}

/// A persistent root slot in the arena header. Engines keep their canonical
/// recovery state (log pointers, list heads, sequence numbers) here so that
/// a freshly rebooted or failed-over node can reconstruct everything from
/// the arena alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RootSlot {
    /// Head of the Version 0 undo-record list (0 = empty).
    UndoHead,
    /// Version 3 inline-log allocation pointer (arena address).
    LogPtr,
    /// Number of valid set-range records in the `Ranges` region.
    RangeCount,
    /// Monotone transaction sequence number (committed count).
    TxnSeq,
    /// Commit flag / in-transaction marker: 0 idle, 1 in transaction.
    InTxn,
    /// Redo-ring producer cursor (bytes produced, mod nothing — monotone).
    RingProducer,
    /// Redo-ring consumer cursor (bytes consumed — monotone).
    RingConsumer,
    /// Incarnation counter, bumped on every recovery.
    Epoch,
}

impl RootSlot {
    /// All slots in header order.
    pub const ALL: [RootSlot; 8] = [
        RootSlot::UndoHead,
        RootSlot::LogPtr,
        RootSlot::RangeCount,
        RootSlot::TxnSeq,
        RootSlot::InTxn,
        RootSlot::RingProducer,
        RootSlot::RingConsumer,
        RootSlot::Epoch,
    ];

    fn index(self) -> u64 {
        match self {
            RootSlot::UndoHead => 0,
            RootSlot::LogPtr => 1,
            RootSlot::RangeCount => 2,
            RootSlot::TxnSeq => 3,
            RootSlot::InTxn => 4,
            RootSlot::RingProducer => 5,
            RootSlot::RingConsumer => 6,
            RootSlot::Epoch => 7,
        }
    }
}

const MAGIC: u64 = 0x5245_504D_454D_0001; // "REPMEM" v1
const MAGIC_ADDR: Addr = Addr::new(0);
const ROOTS_BASE: Addr = Addr::new(16);
const TABLE_COUNT_ADDR: Addr = Addr::new(112);
const TABLE_BASE: Addr = Addr::new(120);
const TABLE_ENTRY: u64 = 24;

/// Size reserved for the arena header region.
pub const HEADER_LEN: u64 = 4096;

/// Errors from parsing a formatted arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// The arena header does not carry the expected magic number.
    BadMagic {
        /// The value found at offset 0.
        found: u64,
    },
    /// The region table names a region id this build does not know.
    UnknownRegion {
        /// The unknown region code.
        code: u64,
    },
    /// A region extends past the end of the arena.
    RegionOutOfBounds {
        /// The offending region id code.
        code: u64,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BadMagic { found } => {
                write!(f, "arena header magic mismatch (found {found:#x})")
            }
            LayoutError::UnknownRegion { code } => {
                write!(f, "unknown region id {code} in arena region table")
            }
            LayoutError::RegionOutOfBounds { code } => {
                write!(f, "region id {code} extends past the end of the arena")
            }
        }
    }
}

impl Error for LayoutError {}

/// An ordered set of named, non-overlapping regions plus the recovery roots.
///
/// # Examples
///
/// ```
/// use dsnrep_rio::{Arena, Layout, LayoutBuilder, RegionId};
///
/// let layout = LayoutBuilder::new()
///     .region(RegionId::Database, 1 << 20)
///     .region(RegionId::UndoLog, 1 << 16)
///     .build();
/// let mut arena = Arena::new(layout.arena_len());
/// layout.format(&mut arena);
///
/// let reread = Layout::read(&arena).expect("formatted arena parses");
/// assert_eq!(reread.expect_region(RegionId::Database),
///            layout.expect_region(RegionId::Database));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    regions: Vec<(RegionId, Region)>,
    arena_len: u64,
}

impl Layout {
    /// The address of a persistent root slot.
    pub fn root_addr(slot: RootSlot) -> Addr {
        ROOTS_BASE + slot.index() * 8
    }

    /// Total arena length this layout requires.
    pub fn arena_len(&self) -> u64 {
        self.arena_len
    }

    /// Looks up a region by id.
    pub fn region(&self, id: RegionId) -> Option<Region> {
        self.regions
            .iter()
            .find(|(rid, _)| *rid == id)
            .map(|(_, r)| *r)
    }

    /// Looks up a region by id.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no such region.
    pub fn expect_region(&self, id: RegionId) -> Region {
        self.region(id)
            .unwrap_or_else(|| panic!("layout has no {id} region"))
    }

    /// Iterates over `(id, region)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, Region)> + '_ {
        self.regions.iter().copied()
    }

    /// Writes the header (magic, zeroed roots, region table) into `arena`.
    ///
    /// # Panics
    ///
    /// Panics if the arena is shorter than the layout requires.
    pub fn format(&self, arena: &mut Arena) {
        assert!(
            arena.len() >= self.arena_len,
            "arena ({} bytes) smaller than layout ({} bytes)",
            arena.len(),
            self.arena_len
        );
        arena.write_u64(MAGIC_ADDR, MAGIC);
        for slot in RootSlot::ALL {
            arena.write_u64(Layout::root_addr(slot), 0);
        }
        arena.write_u64(TABLE_COUNT_ADDR, self.regions.len() as u64);
        for (i, (id, region)) in self.regions.iter().enumerate() {
            let base = TABLE_BASE + i as u64 * TABLE_ENTRY;
            arena.write_u64(base, id.code());
            arena.write_u64(base + 8, region.start().as_u64());
            arena.write_u64(base + 16, region.len());
        }
    }

    /// Parses the layout back out of a formatted arena.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if the magic is missing, a region id is
    /// unknown, or a region does not fit in the arena.
    pub fn read(arena: &Arena) -> Result<Layout, LayoutError> {
        let found = arena.read_u64(MAGIC_ADDR);
        if found != MAGIC {
            return Err(LayoutError::BadMagic { found });
        }
        let count = arena.read_u64(TABLE_COUNT_ADDR) as usize;
        let mut regions = Vec::with_capacity(count);
        let mut arena_len = HEADER_LEN;
        for i in 0..count {
            let base = TABLE_BASE + i as u64 * TABLE_ENTRY;
            let code = arena.read_u64(base);
            let id = RegionId::from_code(code).ok_or(LayoutError::UnknownRegion { code })?;
            let start = Addr::new(arena.read_u64(base + 8));
            let len = arena.read_u64(base + 16);
            let end = start.as_u64().saturating_add(len);
            if end > arena.len() {
                return Err(LayoutError::RegionOutOfBounds { code });
            }
            arena_len = arena_len.max(end);
            regions.push((id, Region::new(start, len)));
        }
        Ok(Layout { regions, arena_len })
    }
}

/// Incrementally lays out regions, 64-byte aligned, after the header.
#[derive(Clone, Debug, Default)]
pub struct LayoutBuilder {
    regions: Vec<(RegionId, u64)>,
}

impl LayoutBuilder {
    /// Creates an empty builder (the header region is implicit).
    pub fn new() -> Self {
        LayoutBuilder::default()
    }

    /// Appends a region of `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already added or is [`RegionId::Header`].
    pub fn region(mut self, id: RegionId, len: u64) -> Self {
        assert!(id != RegionId::Header, "the header region is implicit");
        assert!(
            !self.regions.iter().any(|(rid, _)| *rid == id),
            "region {id} added twice"
        );
        self.regions.push((id, len));
        self
    }

    /// Finalizes the layout, assigning 64-byte-aligned addresses in
    /// insertion order.
    pub fn build(self) -> Layout {
        let mut regions = vec![(RegionId::Header, Region::new(Addr::ZERO, HEADER_LEN))];
        let mut cursor = Addr::new(HEADER_LEN);
        for (id, len) in self.regions {
            cursor = cursor.align_up(64);
            regions.push((id, Region::new(cursor, len)));
            cursor = cursor + len;
        }
        Layout {
            regions,
            arena_len: cursor.align_up(64).as_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Layout {
        LayoutBuilder::new()
            .region(RegionId::Database, 1000)
            .region(RegionId::UndoLog, 500)
            .region(RegionId::Heap, 2048)
            .build()
    }

    #[test]
    fn regions_are_aligned_and_disjoint() {
        let l = sample();
        let regions: Vec<Region> = l.iter().map(|(_, r)| r).collect();
        for r in &regions[1..] {
            assert_eq!(r.start().offset_in(64), 0);
        }
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                assert!(!a.overlaps(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn format_then_read_round_trips() {
        let l = sample();
        let mut arena = Arena::new(l.arena_len());
        l.format(&mut arena);
        assert_eq!(Layout::read(&arena).unwrap(), l);
    }

    #[test]
    fn read_rejects_unformatted_arena() {
        let arena = Arena::new(8192);
        assert!(matches!(
            Layout::read(&arena),
            Err(LayoutError::BadMagic { found: 0 })
        ));
    }

    #[test]
    fn read_rejects_truncated_region() {
        let l = sample();
        let mut arena = Arena::new(l.arena_len());
        l.format(&mut arena);
        // Corrupt the database region length.
        arena.write_u64(Addr::new(120 + 16), u64::MAX / 2);
        assert!(matches!(
            Layout::read(&arena),
            Err(LayoutError::RegionOutOfBounds { .. })
        ));
    }

    #[test]
    fn read_rejects_unknown_region_code() {
        let l = sample();
        let mut arena = Arena::new(l.arena_len());
        l.format(&mut arena);
        arena.write_u64(Addr::new(120), 999);
        assert!(matches!(
            Layout::read(&arena),
            Err(LayoutError::UnknownRegion { code: 999 })
        ));
    }

    #[test]
    fn root_slots_live_in_the_header() {
        for slot in RootSlot::ALL {
            let addr = Layout::root_addr(slot);
            assert!(addr.as_u64() >= 16 && addr.as_u64() < 112, "{addr}");
        }
    }

    #[test]
    #[should_panic]
    fn duplicate_region_panics() {
        let _ = LayoutBuilder::new()
            .region(RegionId::Database, 10)
            .region(RegionId::Database, 10);
    }

    #[test]
    fn expect_region_panics_on_missing() {
        let l = sample();
        assert!(l.region(RegionId::Mirror).is_none());
        let result = std::panic::catch_unwind(|| l.expect_region(RegionId::Mirror));
        assert!(result.is_err());
    }
}
