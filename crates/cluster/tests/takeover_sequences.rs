//! Interleaved failure/recovery sequences: repeated crashes, rejoins, and
//! takeover timelines against one [`ViewManager`], checking that event
//! ordering and epoch accounting stay consistent however the failures and
//! recoveries interleave.

use dsnrep_cluster::{
    takeover_timeline, HeartbeatConfig, HeartbeatMonitor, HeartbeatSchedule, NodeId,
    TakeoverTimeline, ViewManager,
};
use dsnrep_simcore::{VirtualDuration, VirtualInstant};

const SAN_LATENCY: VirtualDuration = VirtualDuration::from_micros(3);

fn config() -> HeartbeatConfig {
    HeartbeatConfig {
        period: VirtualDuration::from_micros(200),
        misses: 3,
    }
}

/// Every timeline's instants must be totally ordered: the last heartbeat
/// precedes the crash's detection, detection does not precede the crash,
/// and serving happens at or after view installation.
fn assert_ordered(t: &TakeoverTimeline) {
    assert!(
        t.last_heartbeat_at <= t.detected_at,
        "heartbeat after detection: {t:?}"
    );
    assert!(t.detected_at > t.crashed_at, "detected before crash: {t:?}");
    assert!(
        t.view_installed_at >= t.detected_at,
        "view before detection: {t:?}"
    );
    assert!(
        t.serving_at >= t.view_installed_at,
        "serving before view: {t:?}"
    );
    assert_eq!(
        t.outage(),
        t.serving_at.saturating_duration_since(t.crashed_at)
    );
}

#[test]
fn successive_failovers_keep_ordering_and_advance_epochs() {
    let mut views = ViewManager::new(
        NodeId::new(0),
        vec![NodeId::new(1), NodeId::new(2)],
        VirtualInstant::EPOCH,
    );
    let recovery = VirtualDuration::from_millis(2);

    // First crash: primary 0 dies, backup 1 takes over.
    let crash1 = VirtualInstant::EPOCH + VirtualDuration::from_millis(5);
    let t1 = takeover_timeline(config(), SAN_LATENCY, crash1, recovery, &mut views).unwrap();
    assert_ordered(&t1);
    assert_eq!(views.current().primary(), NodeId::new(1));
    assert_eq!(views.current().epoch(), 2);
    assert_eq!(views.current().installed_at(), t1.view_installed_at);

    // Second crash, strictly after the first takeover finished serving:
    // primary 1 dies, backup 2 takes over.
    let crash2 = t1.serving_at + VirtualDuration::from_millis(5);
    let t2 = takeover_timeline(config(), SAN_LATENCY, crash2, recovery, &mut views).unwrap();
    assert_ordered(&t2);
    assert_eq!(views.current().primary(), NodeId::new(2));
    assert_eq!(views.current().epoch(), 3);

    // The two takeovers must not overlap: the second timeline starts
    // after the first one ends.
    assert!(t2.crashed_at > t1.serving_at);
    assert!(t2.last_heartbeat_at >= t1.view_installed_at);

    // History (superseded views) plus the current view covers all three
    // epochs in installation order.
    let mut all: Vec<_> = views.history().to_vec();
    all.push(views.current().clone());
    assert_eq!(all.len(), 3);
    for pair in all.windows(2) {
        assert!(pair[0].installed_at() <= pair[1].installed_at());
        assert_eq!(pair[0].epoch() + 1, pair[1].epoch());
    }
}

#[test]
fn recovery_interleaved_with_failure_restores_redundancy() {
    let mut views = ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH);
    let recovery = VirtualDuration::from_millis(1);

    // Crash the primary; node 1 takes over and the cluster is down to one.
    let crash1 = VirtualInstant::EPOCH + VirtualDuration::from_millis(3);
    let t1 = takeover_timeline(config(), SAN_LATENCY, crash1, recovery, &mut views).unwrap();
    assert_ordered(&t1);
    assert!(views.current().backups().is_empty());

    // The crashed node reboots and rejoins as a backup after the takeover.
    let rejoin_at = t1.serving_at + VirtualDuration::from_millis(10);
    let view = views.join(NodeId::new(0), rejoin_at);
    assert_eq!(view.primary(), NodeId::new(1));
    assert_eq!(view.backups(), &[NodeId::new(0)]);
    assert!(view.installed_at() >= t1.serving_at);

    // Now the new primary crashes too: the rejoined node takes back over.
    let crash2 = rejoin_at + VirtualDuration::from_millis(3);
    let t2 = takeover_timeline(config(), SAN_LATENCY, crash2, recovery, &mut views).unwrap();
    assert_ordered(&t2);
    assert_eq!(views.current().primary(), NodeId::new(0));
    // Epochs: initial (1), first failover (2), rejoin (3), second failover (4).
    assert_eq!(views.current().epoch(), 4);
    assert!(t2.view_installed_at > t1.view_installed_at);
}

#[test]
fn detection_latency_is_bounded_by_the_miss_budget() {
    // Whatever instant the crash lands on relative to the beat schedule,
    // detection must come within (misses + 1) periods + delivery latency.
    let cfg = config();
    let bound = cfg.period * u64::from(cfg.misses + 1) + SAN_LATENCY;
    for offset_us in [1u64, 50, 199, 200, 201, 999, 1000, 1234] {
        let mut views =
            ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH);
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_micros(offset_us);
        let t =
            takeover_timeline(cfg, SAN_LATENCY, crash, VirtualDuration::ZERO, &mut views).unwrap();
        assert_ordered(&t);
        assert!(
            t.detected_at <= crash + bound,
            "offset {offset_us}us: detection {t:?} beyond bound"
        );
    }
}

#[test]
fn monitor_tracks_the_schedule_it_watches() {
    // Drive a schedule and a monitor together through a healthy phase, a
    // missed-beat phase (simulating a stall, not a crash), and a resumed
    // phase; the monitor's verdict must flip exactly with the miss budget.
    let cfg = config();
    let mut schedule = HeartbeatSchedule::new(cfg, VirtualInstant::EPOCH);
    let mut monitor = HeartbeatMonitor::new(cfg, VirtualInstant::EPOCH);

    // Healthy: 10 on-time beats, never suspect while current.
    for _ in 0..10 {
        let sent = schedule.next_due();
        schedule.emitted(sent);
        monitor.observe(sent + SAN_LATENCY);
        assert!(!monitor.is_suspect(sent + SAN_LATENCY));
    }
    assert_eq!(monitor.observed(), schedule.count());
    let last_arrival = monitor.last_seen();

    // Stall: the sender misses beats. Just inside the budget: not suspect.
    let budget = cfg.period * u64::from(cfg.misses);
    assert!(!monitor.is_suspect(last_arrival + budget));
    // Just past it: suspect.
    assert!(monitor.is_suspect(last_arrival + budget + VirtualDuration::from_picos(1)));

    // Resume: a late beat clears the suspicion going forward.
    let late = last_arrival + budget + cfg.period;
    monitor.observe(late);
    assert!(!monitor.is_suspect(late + cfg.period));
    assert_eq!(monitor.observed(), 11);
}
