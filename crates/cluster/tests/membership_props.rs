//! Property tests: view transitions keep exactly one primary and a
//! monotone epoch under arbitrary failure/join sequences.

use dsnrep_cluster::{NodeId, Role, ViewManager};
use dsnrep_simcore::VirtualInstant;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Event {
    Fail(u8),
    Join(u8),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..6).prop_map(Event::Fail),
        (0u8..6).prop_map(Event::Join),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn views_stay_consistent(events in prop::collection::vec(event_strategy(), 1..60)) {
        let mut views = ViewManager::new(
            NodeId::new(0),
            vec![NodeId::new(1), NodeId::new(2)],
            VirtualInstant::EPOCH,
        );
        let mut epoch = views.current().epoch();
        let mut t = 0u64;
        for event in events {
            t += 1;
            let at = VirtualInstant::from_picos(t);
            match event {
                Event::Fail(n) => {
                    // May legitimately fail (unknown node / no successor);
                    // the view must be unchanged in that case.
                    let before = views.current().clone();
                    if views.fail(NodeId::new(n), at).is_err() {
                        prop_assert_eq!(views.current(), &before);
                    }
                }
                Event::Join(n) => {
                    views.join(NodeId::new(n), at);
                }
            }
            let view = views.current();
            // Epoch is monotone.
            prop_assert!(view.epoch() >= epoch);
            epoch = view.epoch();
            // Exactly one primary, never also a backup.
            prop_assert!(!view.backups().contains(&view.primary()));
            // No duplicate backups.
            let mut b = view.backups().to_vec();
            b.sort();
            b.dedup();
            prop_assert_eq!(b.len(), view.backups().len());
            // Roles are consistent.
            prop_assert_eq!(view.role_of(view.primary()), Some(Role::Primary));
        }
    }
}
