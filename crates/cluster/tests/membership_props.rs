//! Property tests: view transitions keep exactly one primary and a
//! monotone epoch under arbitrary failure/join sequences.

use dsnrep_cluster::{NodeId, Role, ViewManager};
use dsnrep_simcore::VirtualInstant;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Event {
    Fail(u8),
    Join(u8),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..6).prop_map(Event::Fail),
        (0u8..6).prop_map(Event::Join),
    ]
}

/// A reference model of the membership protocol: the member list in
/// seniority order (primary first). Failing the primary must promote the
/// next-most-senior member; joins append as most junior.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Model {
    members: Vec<NodeId>,
}

impl Model {
    fn new(rf: u8) -> Self {
        Model {
            members: (0..rf).map(NodeId::new).collect(),
        }
    }

    /// Applies an event; returns whether the membership changed (and so a
    /// new view must have been installed).
    fn apply(&mut self, event: Event) -> bool {
        match event {
            Event::Fail(n) => {
                let node = NodeId::new(n);
                // A primary failure with no successor is rejected by the
                // manager and leaves the view unchanged.
                if self.members.first() == Some(&node) && self.members.len() == 1 {
                    return false;
                }
                let before = self.members.len();
                self.members.retain(|&m| m != node);
                self.members.len() != before
            }
            Event::Join(n) => {
                let node = NodeId::new(n);
                if self.members.contains(&node) {
                    return false;
                }
                self.members.push(node);
                true
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Model-based check over clusters of N ≤ 8 nodes: epochs are
    /// *strictly* monotone across installed views (and frozen otherwise —
    /// duplicate joins and rejected failures install nothing), every
    /// survivor replica computes the identical view from the same event
    /// sequence, and the promoted primary is always the most senior live
    /// backup of the previous view.
    #[test]
    fn n_node_sequences_agree_with_the_model(
        rf in 2u8..=8,
        events in prop::collection::vec(
            prop_oneof![(0u8..10).prop_map(Event::Fail), (0u8..10).prop_map(Event::Join)],
            1..80,
        ),
    ) {
        let backups: Vec<_> = (1..rf).map(NodeId::new).collect();
        let mut views = ViewManager::new(NodeId::new(0), backups.clone(), VirtualInstant::EPOCH);
        // Survivor replicas: every node independently replays the same
        // deterministic transition sequence and must land on the same view.
        let mut replicas: Vec<ViewManager> = (0..rf)
            .map(|_| ViewManager::new(NodeId::new(0), backups.clone(), VirtualInstant::EPOCH))
            .collect();
        let mut model = Model::new(rf);
        let mut t = 0u64;
        for event in events {
            t += 1;
            let at = VirtualInstant::from_picos(t);
            let epoch_before = views.current().epoch();
            let history_before = views.history().len();
            let primary_before = views.current().primary();
            let senior_backup = views.current().backups().first().copied();
            let changed = model.apply(event);
            match event {
                Event::Fail(n) => {
                    let r = views.fail(NodeId::new(n), at);
                    for replica in &mut replicas {
                        let _ = replica.fail(NodeId::new(n), at);
                    }
                    prop_assert_eq!(r.is_ok(), changed);
                }
                Event::Join(n) => {
                    views.join(NodeId::new(n), at);
                    for replica in &mut replicas {
                        replica.join(NodeId::new(n), at);
                    }
                }
            }
            let view = views.current();
            if changed {
                // Strictly monotone epoch, exactly one history entry.
                prop_assert_eq!(view.epoch(), epoch_before + 1);
                prop_assert_eq!(views.history().len(), history_before + 1);
            } else {
                // No-op events (duplicate join, unknown/last-node failure)
                // must freeze the epoch and the history.
                prop_assert_eq!(view.epoch(), epoch_before);
                prop_assert_eq!(views.history().len(), history_before);
            }
            // The installed view matches the model exactly: the model's
            // senior member is the primary, the rest are the backups in
            // seniority order.
            prop_assert_eq!(view.primary(), model.members[0]);
            prop_assert_eq!(view.backups(), &model.members[1..]);
            prop_assert_eq!(view.redundancy(), model.members.len());
            prop_assert_eq!(
                views.is_degraded(),
                model.members.len() < usize::from(rf)
            );
            // If the primary changed, the successor is the most senior
            // live backup of the previous view.
            if view.primary() != primary_before {
                prop_assert_eq!(Some(view.primary()), senior_backup);
            }
            // Every survivor computed the identical view.
            for replica in &replicas {
                prop_assert_eq!(replica.current(), view);
            }
        }
    }

    #[test]
    fn views_stay_consistent(events in prop::collection::vec(event_strategy(), 1..60)) {
        let mut views = ViewManager::new(
            NodeId::new(0),
            vec![NodeId::new(1), NodeId::new(2)],
            VirtualInstant::EPOCH,
        );
        let mut epoch = views.current().epoch();
        let mut t = 0u64;
        for event in events {
            t += 1;
            let at = VirtualInstant::from_picos(t);
            match event {
                Event::Fail(n) => {
                    // May legitimately fail (unknown node / no successor);
                    // the view must be unchanged in that case.
                    let before = views.current().clone();
                    if views.fail(NodeId::new(n), at).is_err() {
                        prop_assert_eq!(views.current(), &before);
                    }
                }
                Event::Join(n) => {
                    views.join(NodeId::new(n), at);
                }
            }
            let view = views.current();
            // Epoch is monotone.
            prop_assert!(view.epoch() >= epoch);
            epoch = view.epoch();
            // Exactly one primary, never also a backup.
            prop_assert!(!view.backups().contains(&view.primary()));
            // No duplicate backups.
            let mut b = view.backups().to_vec();
            b.sort();
            b.dedup();
            prop_assert_eq!(b.len(), view.backups().len());
            // Roles are consistent.
            prop_assert_eq!(view.role_of(view.primary()), Some(Role::Primary));
        }
    }
}
