//! Heartbeat-based failure detection.
//!
//! The paper explicitly defers crash detection and group view management to
//! "well-known solutions" (its reference \[12\] is the Microsoft Cluster
//! Service design). This module provides a small, deterministic version so
//! the repository's failover story is end-to-end executable: the primary
//! writes a heartbeat sequence number through the SAN at a fixed period;
//! the backup suspects the primary after a configurable number of missed
//! periods.

use dsnrep_simcore::{VirtualDuration, VirtualInstant};

/// Failure-detector configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often the primary emits a heartbeat.
    pub period: VirtualDuration,
    /// Missed periods before the peer is suspected.
    pub misses: u32,
}

impl Default for HeartbeatConfig {
    /// 1 ms heartbeats, suspect after 3 misses: conservative for a SAN with
    /// 3.3 µs latency, giving a worst-case detection time of ~4 ms.
    fn default() -> Self {
        HeartbeatConfig {
            period: VirtualDuration::from_millis(1),
            misses: 3,
        }
    }
}

/// A per-peer heartbeat monitor.
///
/// # Examples
///
/// ```
/// use dsnrep_cluster::{HeartbeatConfig, HeartbeatMonitor};
/// use dsnrep_simcore::{VirtualDuration, VirtualInstant};
///
/// let config = HeartbeatConfig { period: VirtualDuration::from_micros(100), misses: 2 };
/// let mut monitor = HeartbeatMonitor::new(config, VirtualInstant::EPOCH);
/// let t1 = VirtualInstant::EPOCH + VirtualDuration::from_micros(100);
/// monitor.observe(t1);
/// assert!(!monitor.is_suspect(t1 + VirtualDuration::from_micros(150)));
/// assert!(monitor.is_suspect(t1 + VirtualDuration::from_micros(250)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatMonitor {
    config: HeartbeatConfig,
    last_seen: VirtualInstant,
    observed: u64,
}

impl HeartbeatMonitor {
    /// Creates a monitor that treats `start` as the first implicit
    /// heartbeat (joining the cluster counts as being alive).
    pub fn new(config: HeartbeatConfig, start: VirtualInstant) -> Self {
        HeartbeatMonitor {
            config,
            last_seen: start,
            observed: 0,
        }
    }

    /// Records a heartbeat that arrived at `at`. Out-of-order arrivals
    /// (strictly earlier than the newest seen) are ignored entirely: they
    /// neither move the deadline nor count toward [`observed`], so
    /// `observed()` reports only the arrivals that actually refreshed the
    /// failure detector — stale duplicates replayed under faultsim's
    /// heartbeat delay/drop distortions must not inflate it.
    ///
    /// [`observed`]: HeartbeatMonitor::observed
    pub fn observe(&mut self, at: VirtualInstant) {
        if at < self.last_seen {
            return;
        }
        self.last_seen = at;
        self.observed += 1;
    }

    /// The instant after which the peer becomes suspect.
    pub fn deadline(&self) -> VirtualInstant {
        self.last_seen + self.config.period * u64::from(self.config.misses)
    }

    /// Whether the peer is suspected dead at `now`.
    pub fn is_suspect(&self, now: VirtualInstant) -> bool {
        now > self.deadline()
    }

    /// Heartbeats observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Last heartbeat arrival.
    pub fn last_seen(&self) -> VirtualInstant {
        self.last_seen
    }
}

/// The primary-side heartbeat schedule: deterministic emission instants.
///
/// # Examples
///
/// ```
/// use dsnrep_cluster::{HeartbeatConfig, HeartbeatSchedule};
/// use dsnrep_simcore::{VirtualDuration, VirtualInstant};
///
/// let config = HeartbeatConfig { period: VirtualDuration::from_micros(10), misses: 3 };
/// let mut schedule = HeartbeatSchedule::new(config, VirtualInstant::EPOCH);
/// let first = schedule.next_due();
/// schedule.emitted(first);
/// assert_eq!(schedule.next_due(), first + VirtualDuration::from_micros(10));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatSchedule {
    config: HeartbeatConfig,
    next: VirtualInstant,
    emitted: u64,
}

impl HeartbeatSchedule {
    /// Creates a schedule whose first beat is due one period after `start`.
    pub fn new(config: HeartbeatConfig, start: VirtualInstant) -> Self {
        HeartbeatSchedule {
            config,
            next: start + config.period,
            emitted: 0,
        }
    }

    /// When the next heartbeat should be sent.
    pub fn next_due(&self) -> VirtualInstant {
        self.next
    }

    /// Records that a heartbeat was sent at `at` and advances the schedule.
    pub fn emitted(&mut self, at: VirtualInstant) {
        self.emitted += 1;
        self.next = at.max(self.next) + self.config.period;
    }

    /// Heartbeats emitted so far.
    pub fn count(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HeartbeatConfig {
        HeartbeatConfig {
            period: VirtualDuration::from_micros(100),
            misses: 3,
        }
    }

    #[test]
    fn healthy_peer_is_never_suspect() {
        let mut m = HeartbeatMonitor::new(config(), VirtualInstant::EPOCH);
        let mut now = VirtualInstant::EPOCH;
        for _ in 0..50 {
            now += VirtualDuration::from_micros(100);
            m.observe(now);
            assert!(!m.is_suspect(now + VirtualDuration::from_micros(120)));
        }
        assert_eq!(m.observed(), 50);
    }

    #[test]
    fn silent_peer_is_suspected_after_misses() {
        let m = HeartbeatMonitor::new(config(), VirtualInstant::EPOCH);
        // Deadline: 3 * 100 us after the implicit start beat.
        assert!(!m.is_suspect(VirtualInstant::from_picos(300_000_000)));
        assert!(m.is_suspect(VirtualInstant::from_picos(300_000_001)));
    }

    #[test]
    fn out_of_order_heartbeats_do_not_regress_the_deadline() {
        let mut m = HeartbeatMonitor::new(config(), VirtualInstant::EPOCH);
        let late = VirtualInstant::EPOCH + VirtualDuration::from_micros(500);
        m.observe(late);
        m.observe(VirtualInstant::EPOCH + VirtualDuration::from_micros(100));
        assert_eq!(m.last_seen(), late);
    }

    #[test]
    fn stale_arrivals_are_not_counted_as_observed() {
        let mut m = HeartbeatMonitor::new(config(), VirtualInstant::EPOCH);
        let t1 = VirtualInstant::EPOCH + VirtualDuration::from_micros(100);
        let t2 = VirtualInstant::EPOCH + VirtualDuration::from_micros(200);
        m.observe(t1);
        m.observe(t2);
        assert_eq!(m.observed(), 2);
        // A delayed duplicate of the first beat arrives after the second:
        // it is ignored for the deadline, so it must not count either.
        m.observe(t1);
        assert_eq!(m.observed(), 2);
        assert_eq!(m.last_seen(), t2);
        // A tie with the newest arrival still refreshes the detector
        // (same instant, e.g. a redundant path) and is counted.
        m.observe(t2);
        assert_eq!(m.observed(), 3);
        assert_eq!(m.last_seen(), t2);
    }

    #[test]
    fn schedule_is_strictly_periodic() {
        let mut s = HeartbeatSchedule::new(config(), VirtualInstant::EPOCH);
        let mut previous = VirtualInstant::EPOCH;
        for _ in 0..10 {
            let due = s.next_due();
            assert_eq!(
                due.duration_since(previous),
                VirtualDuration::from_micros(100)
            );
            s.emitted(due);
            previous = due;
        }
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn late_emission_shifts_the_schedule() {
        let mut s = HeartbeatSchedule::new(config(), VirtualInstant::EPOCH);
        let due = s.next_due();
        let late = due + VirtualDuration::from_micros(40);
        s.emitted(late);
        assert_eq!(s.next_due(), late + VirtualDuration::from_micros(100));
    }
}
