//! Cluster availability machinery: failure detection, membership, takeover.
//!
//! The paper focuses on replication performance and explicitly defers
//! "crash detection and group view management" to well-known solutions
//! (its reference \[12\] is the Microsoft Cluster Service). This crate
//! supplies a compact, deterministic version of those pieces so the
//! repository tells the full availability story end to end:
//!
//! * [`HeartbeatSchedule`] / [`HeartbeatMonitor`] — periodic heartbeats
//!   over the SAN and a miss-counting failure detector.
//! * [`NodeId`] / [`GroupView`] / [`ViewManager`] — epoch-numbered views
//!   with deterministic backup promotion and a degraded-redundancy signal.
//! * [`Topology`] / [`ReplicationStrategy`] — validated N-node cluster
//!   shapes (primary-backup fan-out, chain, R/W quorums) consumed by
//!   `dsnrep-repl`'s `ReplicaSet`.
//! * [`takeover_timeline`] — crash-to-serving outage computation, combining
//!   detection latency with the engine's measured recovery time.
//!
//! The integration tests at the workspace root drive a real
//! `dsnrep-repl` failover through these pieces.
//!
//! # Examples
//!
//! ```
//! use dsnrep_cluster::{HeartbeatConfig, NodeId, takeover_timeline, ViewManager};
//! use dsnrep_simcore::{VirtualDuration, VirtualInstant};
//!
//! let mut views = ViewManager::new(NodeId::new(0), vec![NodeId::new(1)],
//!                                  VirtualInstant::EPOCH);
//! let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(20);
//! let timeline = takeover_timeline(
//!     HeartbeatConfig::default(),
//!     VirtualDuration::from_micros(3),
//!     crash,
//!     VirtualDuration::from_millis(1),
//!     &mut views,
//! )?;
//! println!("outage: {}", timeline.outage());
//! assert_eq!(views.current().primary(), NodeId::new(1));
//! # Ok::<(), dsnrep_cluster::ViewError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod heartbeat;
mod membership;
mod timeline;
mod topology;

pub use heartbeat::{HeartbeatConfig, HeartbeatMonitor, HeartbeatSchedule};
pub use membership::{GroupView, NodeId, Role, ViewError, ViewManager};
pub use timeline::{
    takeover_timeline, takeover_timeline_with_faults, HeartbeatFaults, TakeoverTimeline,
};
pub use topology::{ReplicationStrategy, Topology, TopologyError};
