//! End-to-end takeover timelines.
//!
//! Combines the heartbeat detector and the view manager into a single
//! deterministic computation: given a crash instant, when is the failure
//! detected, when is the new view installed, and — with a caller-supplied
//! recovery duration — when does the promoted backup start serving?
//! This quantifies the paper's availability claim: with replication the
//! outage is the detection + takeover window (milliseconds), not a machine
//! reboot.

use dsnrep_simcore::{VirtualDuration, VirtualInstant};

use crate::heartbeat::{HeartbeatConfig, HeartbeatMonitor, HeartbeatSchedule};
use crate::membership::ViewManager;

/// The instants of one takeover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TakeoverTimeline {
    /// When the primary crashed.
    pub crashed_at: VirtualInstant,
    /// The last heartbeat the backup received before the crash.
    pub last_heartbeat_at: VirtualInstant,
    /// When the backup's failure detector fired.
    pub detected_at: VirtualInstant,
    /// When the successor view was installed.
    pub view_installed_at: VirtualInstant,
    /// When the promoted backup finished recovery and began serving.
    pub serving_at: VirtualInstant,
}

impl TakeoverTimeline {
    /// Total unavailability: crash to serving.
    pub fn outage(&self) -> VirtualDuration {
        self.serving_at.saturating_duration_since(self.crashed_at)
    }
}

/// Computes a takeover timeline for a two-node cluster.
///
/// Heartbeats are emitted on schedule and arrive one `delivery_latency`
/// later; beats scheduled after the crash never arrive. Detection happens
/// at the monitor deadline, view installation is immediate (a local
/// computation in a two-node cluster), and serving begins after
/// `recovery` (the measured recovery work of the engine version in use).
///
/// # Examples
///
/// ```
/// use dsnrep_cluster::{takeover_timeline, HeartbeatConfig, NodeId, ViewManager};
/// use dsnrep_simcore::{VirtualDuration, VirtualInstant};
///
/// let mut views = ViewManager::new(NodeId::new(0), vec![NodeId::new(1)],
///                                  VirtualInstant::EPOCH);
/// let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(10);
/// let timeline = takeover_timeline(
///     HeartbeatConfig::default(),
///     VirtualDuration::from_micros(3),   // SAN latency
///     crash,
///     VirtualDuration::from_millis(2),   // engine recovery time
///     &mut views,
/// ).expect("a backup exists");
/// assert!(timeline.outage() >= VirtualDuration::from_millis(3));
/// assert_eq!(views.current().primary(), NodeId::new(1));
/// ```
///
/// # Errors
///
/// Propagates [`ViewError`](crate::ViewError) if no successor exists.
pub fn takeover_timeline(
    config: HeartbeatConfig,
    delivery_latency: VirtualDuration,
    crashed_at: VirtualInstant,
    recovery: VirtualDuration,
    views: &mut ViewManager,
) -> Result<TakeoverTimeline, crate::ViewError> {
    takeover_timeline_with_faults(
        config,
        delivery_latency,
        crashed_at,
        recovery,
        views,
        HeartbeatFaults::default(),
    )
}

/// Injected heartbeat-path faults for [`takeover_timeline_with_faults`]:
/// the ways a sick-but-not-dead primary (or a congested SAN) distorts the
/// failure detector's view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeartbeatFaults {
    /// Extra delivery delay added to every heartbeat (network congestion
    /// or a wedged sender). Pushes `last_heartbeat_at` — and therefore the
    /// detection deadline — later.
    pub delay: VirtualDuration,
    /// Drop every heartbeat after the first `n` emissions (a partially
    /// wedged primary that stops beating before it stops serving). The
    /// detector then fires off the last *delivered* beat, which can be
    /// long before the crash instant.
    pub drop_after: Option<u64>,
}

/// As [`takeover_timeline`], with injected heartbeat faults: every beat is
/// delayed by `faults.delay`, and beats after the first `faults.drop_after`
/// emissions are lost. Detection never precedes what the delivered beats
/// justify, so suspicion can fire *before* the actual crash instant when
/// beats are dropped early — the classic unreliable-failure-detector
/// false positive, surfaced deterministically.
///
/// # Errors
///
/// Propagates [`ViewError`](crate::ViewError) if no successor exists.
pub fn takeover_timeline_with_faults(
    config: HeartbeatConfig,
    delivery_latency: VirtualDuration,
    crashed_at: VirtualInstant,
    recovery: VirtualDuration,
    views: &mut ViewManager,
    faults: HeartbeatFaults,
) -> Result<TakeoverTimeline, crate::ViewError> {
    let primary = views.current().primary();
    let start = views.current().installed_at();
    let mut schedule = HeartbeatSchedule::new(config, start);
    let mut monitor = HeartbeatMonitor::new(config, start);
    // Deliver every heartbeat sent strictly before the crash (and not
    // dropped by the injected fault), each one `delay` late.
    let mut last_heartbeat_at = start;
    while schedule.next_due() < crashed_at {
        let sent = schedule.next_due();
        let dropped = faults
            .drop_after
            .is_some_and(|after| schedule.count() >= after);
        if !dropped {
            last_heartbeat_at = sent + delivery_latency + faults.delay;
            monitor.observe(last_heartbeat_at);
        }
        schedule.emitted(sent);
    }
    let detected_at = monitor.deadline();
    let view_installed_at = detected_at;
    views.fail(primary, view_installed_at)?;
    Ok(TakeoverTimeline {
        crashed_at,
        last_heartbeat_at,
        detected_at,
        view_installed_at,
        serving_at: view_installed_at + recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::NodeId;

    fn two_nodes() -> ViewManager {
        ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH)
    }

    #[test]
    fn detection_happens_within_the_configured_window() {
        let config = HeartbeatConfig {
            period: VirtualDuration::from_micros(100),
            misses: 3,
        };
        let mut views = two_nodes();
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(5);
        let t = takeover_timeline(
            config,
            VirtualDuration::from_micros(3),
            crash,
            VirtualDuration::ZERO,
            &mut views,
        )
        .unwrap();
        assert!(t.detected_at > crash);
        // Worst case: one period until the next (missed) beat, plus the
        // miss budget.
        let worst =
            crash + config.period * u64::from(config.misses + 1) + VirtualDuration::from_micros(3);
        assert!(t.detected_at <= worst, "{t:?}");
    }

    #[test]
    fn outage_includes_recovery() {
        let mut views = two_nodes();
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(50);
        let recovery = VirtualDuration::from_millis(7);
        let t = takeover_timeline(
            HeartbeatConfig::default(),
            VirtualDuration::from_micros(3),
            crash,
            recovery,
            &mut views,
        )
        .unwrap();
        assert_eq!(t.serving_at, t.view_installed_at + recovery);
        assert!(t.outage() >= recovery);
        assert_eq!(views.current().primary(), NodeId::new(1));
        assert_eq!(views.current().epoch(), 2);
    }

    #[test]
    fn crash_before_first_heartbeat_still_detects() {
        let mut views = two_nodes();
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_nanos(1);
        let t = takeover_timeline(
            HeartbeatConfig::default(),
            VirtualDuration::from_micros(3),
            crash,
            VirtualDuration::ZERO,
            &mut views,
        )
        .unwrap();
        assert!(t.detected_at > crash);
        assert_eq!(t.last_heartbeat_at, VirtualInstant::EPOCH);
    }

    #[test]
    fn delayed_heartbeats_push_detection_later() {
        let config = HeartbeatConfig {
            period: VirtualDuration::from_micros(100),
            misses: 3,
        };
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(5);
        let latency = VirtualDuration::from_micros(3);
        let delay = VirtualDuration::from_micros(40);
        let baseline = takeover_timeline(config, latency, crash, VirtualDuration::ZERO, {
            &mut two_nodes()
        })
        .unwrap();
        let delayed = takeover_timeline_with_faults(
            config,
            latency,
            crash,
            VirtualDuration::ZERO,
            &mut two_nodes(),
            HeartbeatFaults {
                delay,
                drop_after: None,
            },
        )
        .unwrap();
        assert_eq!(
            delayed.last_heartbeat_at,
            baseline.last_heartbeat_at + delay
        );
        assert_eq!(delayed.detected_at, baseline.detected_at + delay);
        assert_eq!(delayed.outage(), baseline.outage() + delay);
    }

    #[test]
    fn dropped_heartbeats_force_early_suspicion() {
        let config = HeartbeatConfig {
            period: VirtualDuration::from_micros(100),
            misses: 3,
        };
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(5);
        let latency = VirtualDuration::from_micros(3);
        let mut views = two_nodes();
        let t = takeover_timeline_with_faults(
            config,
            latency,
            crash,
            VirtualDuration::ZERO,
            &mut views,
            HeartbeatFaults {
                delay: VirtualDuration::ZERO,
                drop_after: Some(10),
            },
        )
        .unwrap();
        // The 10th beat (sent at start + 10 periods) is the last delivered.
        let expected_last =
            VirtualInstant::EPOCH + VirtualDuration::from_micros(100) * 10 + latency;
        assert_eq!(t.last_heartbeat_at, expected_last);
        // Suspicion fires off that beat — well before the actual crash:
        // the detector cannot distinguish "stopped beating" from "dead".
        assert_eq!(
            t.detected_at,
            expected_last + VirtualDuration::from_micros(100) * 3
        );
        assert!(t.detected_at < crash);
        assert_eq!(views.current().primary(), NodeId::new(1));
    }

    #[test]
    fn zero_faults_match_the_unfaulted_timeline() {
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(7);
        let latency = VirtualDuration::from_micros(3);
        let a = takeover_timeline(
            HeartbeatConfig::default(),
            latency,
            crash,
            VirtualDuration::from_millis(1),
            &mut two_nodes(),
        )
        .unwrap();
        let b = takeover_timeline_with_faults(
            HeartbeatConfig::default(),
            latency,
            crash,
            VirtualDuration::from_millis(1),
            &mut two_nodes(),
            HeartbeatFaults::default(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_node_cluster_cannot_fail_over() {
        let mut views = ViewManager::new(NodeId::new(0), vec![], VirtualInstant::EPOCH);
        let err = takeover_timeline(
            HeartbeatConfig::default(),
            VirtualDuration::from_micros(3),
            VirtualInstant::from_picos(1),
            VirtualDuration::ZERO,
            &mut views,
        )
        .unwrap_err();
        assert_eq!(err, crate::ViewError::NoSuccessor);
    }
}
