//! End-to-end takeover timelines.
//!
//! Combines the heartbeat detector and the view manager into a single
//! deterministic computation: given a crash instant, when is the failure
//! detected, when is the new view installed, and — with a caller-supplied
//! recovery duration — when does the promoted backup start serving?
//! This quantifies the paper's availability claim: with replication the
//! outage is the detection + takeover window (milliseconds), not a machine
//! reboot.

use dsnrep_simcore::{VirtualDuration, VirtualInstant};

use crate::heartbeat::{HeartbeatConfig, HeartbeatMonitor, HeartbeatSchedule};
use crate::membership::ViewManager;

/// The instants of one takeover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TakeoverTimeline {
    /// When the primary crashed.
    pub crashed_at: VirtualInstant,
    /// The last heartbeat the backup received before the crash.
    pub last_heartbeat_at: VirtualInstant,
    /// When the backup's failure detector fired.
    pub detected_at: VirtualInstant,
    /// When the successor view was installed.
    pub view_installed_at: VirtualInstant,
    /// When the promoted backup finished recovery and began serving.
    pub serving_at: VirtualInstant,
}

impl TakeoverTimeline {
    /// Total unavailability: crash to serving.
    pub fn outage(&self) -> VirtualDuration {
        self.serving_at.saturating_duration_since(self.crashed_at)
    }
}

/// Computes a takeover timeline for a two-node cluster.
///
/// Heartbeats are emitted on schedule and arrive one `delivery_latency`
/// later; beats scheduled after the crash never arrive. Detection happens
/// at the monitor deadline, view installation is immediate (a local
/// computation in a two-node cluster), and serving begins after
/// `recovery` (the measured recovery work of the engine version in use).
///
/// # Examples
///
/// ```
/// use dsnrep_cluster::{takeover_timeline, HeartbeatConfig, NodeId, ViewManager};
/// use dsnrep_simcore::{VirtualDuration, VirtualInstant};
///
/// let mut views = ViewManager::new(NodeId::new(0), vec![NodeId::new(1)],
///                                  VirtualInstant::EPOCH);
/// let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(10);
/// let timeline = takeover_timeline(
///     HeartbeatConfig::default(),
///     VirtualDuration::from_micros(3),   // SAN latency
///     crash,
///     VirtualDuration::from_millis(2),   // engine recovery time
///     &mut views,
/// ).expect("a backup exists");
/// assert!(timeline.outage() >= VirtualDuration::from_millis(3));
/// assert_eq!(views.current().primary(), NodeId::new(1));
/// ```
///
/// # Errors
///
/// Propagates [`ViewError`](crate::ViewError) if no successor exists.
pub fn takeover_timeline(
    config: HeartbeatConfig,
    delivery_latency: VirtualDuration,
    crashed_at: VirtualInstant,
    recovery: VirtualDuration,
    views: &mut ViewManager,
) -> Result<TakeoverTimeline, crate::ViewError> {
    let primary = views.current().primary();
    let start = views.current().installed_at();
    let mut schedule = HeartbeatSchedule::new(config, start);
    let mut monitor = HeartbeatMonitor::new(config, start);
    // Deliver every heartbeat sent strictly before the crash.
    let mut last_heartbeat_at = start;
    while schedule.next_due() < crashed_at {
        let sent = schedule.next_due();
        last_heartbeat_at = sent + delivery_latency;
        monitor.observe(last_heartbeat_at);
        schedule.emitted(sent);
    }
    let detected_at = monitor.deadline();
    let view_installed_at = detected_at;
    views.fail(primary, view_installed_at)?;
    Ok(TakeoverTimeline {
        crashed_at,
        last_heartbeat_at,
        detected_at,
        view_installed_at,
        serving_at: view_installed_at + recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::NodeId;

    fn two_nodes() -> ViewManager {
        ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH)
    }

    #[test]
    fn detection_happens_within_the_configured_window() {
        let config = HeartbeatConfig {
            period: VirtualDuration::from_micros(100),
            misses: 3,
        };
        let mut views = two_nodes();
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(5);
        let t = takeover_timeline(
            config,
            VirtualDuration::from_micros(3),
            crash,
            VirtualDuration::ZERO,
            &mut views,
        )
        .unwrap();
        assert!(t.detected_at > crash);
        // Worst case: one period until the next (missed) beat, plus the
        // miss budget.
        let worst =
            crash + config.period * u64::from(config.misses + 1) + VirtualDuration::from_micros(3);
        assert!(t.detected_at <= worst, "{t:?}");
    }

    #[test]
    fn outage_includes_recovery() {
        let mut views = two_nodes();
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_millis(50);
        let recovery = VirtualDuration::from_millis(7);
        let t = takeover_timeline(
            HeartbeatConfig::default(),
            VirtualDuration::from_micros(3),
            crash,
            recovery,
            &mut views,
        )
        .unwrap();
        assert_eq!(t.serving_at, t.view_installed_at + recovery);
        assert!(t.outage() >= recovery);
        assert_eq!(views.current().primary(), NodeId::new(1));
        assert_eq!(views.current().epoch(), 2);
    }

    #[test]
    fn crash_before_first_heartbeat_still_detects() {
        let mut views = two_nodes();
        let crash = VirtualInstant::EPOCH + VirtualDuration::from_nanos(1);
        let t = takeover_timeline(
            HeartbeatConfig::default(),
            VirtualDuration::from_micros(3),
            crash,
            VirtualDuration::ZERO,
            &mut views,
        )
        .unwrap();
        assert!(t.detected_at > crash);
        assert_eq!(t.last_heartbeat_at, VirtualInstant::EPOCH);
    }

    #[test]
    fn single_node_cluster_cannot_fail_over() {
        let mut views = ViewManager::new(NodeId::new(0), vec![], VirtualInstant::EPOCH);
        let err = takeover_timeline(
            HeartbeatConfig::default(),
            VirtualDuration::from_micros(3),
            VirtualInstant::from_picos(1),
            VirtualDuration::ZERO,
            &mut views,
        )
        .unwrap_err();
        assert_eq!(err, crate::ViewError::NoSuccessor);
    }
}
