//! Group views and the takeover state machine.
//!
//! A minimal two-plus-node membership layer: a [`GroupView`] names the
//! current primary and backups under a monotonically increasing epoch.
//! When the failure detector suspects the primary, [`ViewManager::fail`]
//! installs a successor view promoting the most senior live backup —
//! deterministically, so every surviving node computes the same view
//! without coordination (sufficient for the simulated two-node cluster;
//! a real multi-node deployment would run a membership consensus here).

use core::fmt;
use std::error::Error;

use dsnrep_simcore::VirtualInstant;

/// A cluster node identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u8);

impl NodeId {
    /// Creates a node id.
    pub const fn new(id: u8) -> Self {
        NodeId(id)
    }

    /// The raw id.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A node's role within a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// Serves transactions.
    Primary,
    /// Maintains a replica and stands by to take over.
    Backup,
}

/// One installed group view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupView {
    epoch: u64,
    primary: NodeId,
    backups: Vec<NodeId>,
    installed_at: VirtualInstant,
}

impl GroupView {
    /// The view's epoch (monotone across installs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The primary in this view.
    pub fn primary(&self) -> NodeId {
        self.primary
    }

    /// The backups, in seniority order.
    pub fn backups(&self) -> &[NodeId] {
        &self.backups
    }

    /// When the view was installed.
    pub fn installed_at(&self) -> VirtualInstant {
        self.installed_at
    }

    /// The role of `node`, or `None` if it is not a member.
    pub fn role_of(&self, node: NodeId) -> Option<Role> {
        if node == self.primary {
            Some(Role::Primary)
        } else if self.backups.contains(&node) {
            Some(Role::Backup)
        } else {
            None
        }
    }

    /// Live copies of the data in this view: the primary plus every
    /// backup. A view with `redundancy() == 1` has no standby left — the
    /// next primary failure is unmaskable. Takeover logic and the
    /// availability report use this to distinguish "a backup failed but
    /// the group still tolerates a fault" from "RF degraded to 1".
    pub fn redundancy(&self) -> usize {
        1 + self.backups.len()
    }
}

/// Errors from view transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// The failed node is not a member of the current view.
    NotAMember {
        /// The unknown node.
        node: NodeId,
    },
    /// The primary failed and no backup remains to take over.
    NoSuccessor,
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::NotAMember { node } => write!(f, "{node} is not in the current view"),
            ViewError::NoSuccessor => f.write_str("no backup remains to take over"),
        }
    }
}

impl Error for ViewError {}

/// Installs group views in response to failures.
///
/// # Examples
///
/// ```
/// use dsnrep_cluster::{NodeId, Role, ViewManager};
/// use dsnrep_simcore::VirtualInstant;
///
/// let primary = NodeId::new(0);
/// let backup = NodeId::new(1);
/// let mut views = ViewManager::new(primary, vec![backup], VirtualInstant::EPOCH);
/// assert_eq!(views.current().primary(), primary);
///
/// let view = views.fail(primary, VirtualInstant::from_picos(1_000))?;
/// assert_eq!(view.primary(), backup);
/// assert_eq!(view.epoch(), 2);
/// # Ok::<(), dsnrep_cluster::ViewError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ViewManager {
    current: GroupView,
    history: Vec<GroupView>,
    configured_redundancy: usize,
}

impl ViewManager {
    /// Creates a manager with an initial view at epoch 1.
    pub fn new(primary: NodeId, backups: Vec<NodeId>, at: VirtualInstant) -> Self {
        let configured_redundancy = 1 + backups.len();
        ViewManager {
            current: GroupView {
                epoch: 1,
                primary,
                backups,
                installed_at: at,
            },
            history: Vec::new(),
            configured_redundancy,
        }
    }

    /// The current view.
    pub fn current(&self) -> &GroupView {
        &self.current
    }

    /// All superseded views, oldest first.
    pub fn history(&self) -> &[GroupView] {
        &self.history
    }

    /// Removes `node` from the view; if it was the primary, the most senior
    /// backup is promoted. Returns the newly installed view.
    ///
    /// # Errors
    ///
    /// [`ViewError::NotAMember`] if `node` is not in the current view;
    /// [`ViewError::NoSuccessor`] if the primary fails with no backups.
    pub fn fail(&mut self, node: NodeId, at: VirtualInstant) -> Result<GroupView, ViewError> {
        if self.current.role_of(node).is_none() {
            return Err(ViewError::NotAMember { node });
        }
        let mut next = self.current.clone();
        next.epoch += 1;
        next.installed_at = at;
        if node == next.primary {
            if next.backups.is_empty() {
                return Err(ViewError::NoSuccessor);
            }
            next.primary = next.backups.remove(0);
        } else {
            next.backups.retain(|&b| b != node);
        }
        self.history
            .push(std::mem::replace(&mut self.current, next));
        Ok(self.current.clone())
    }

    /// Adds a (re-synchronized) node back as the most junior backup,
    /// installing a new view. A join by a node that is already a member
    /// is a no-op that returns the current view unchanged: bumping the
    /// epoch for a duplicate join would inflate the epoch and pollute
    /// [`ViewManager::history`] without changing membership.
    pub fn join(&mut self, node: NodeId, at: VirtualInstant) -> GroupView {
        if self.current.role_of(node).is_some() {
            return self.current.clone();
        }
        let mut next = self.current.clone();
        next.epoch += 1;
        next.installed_at = at;
        next.backups.push(node);
        self.history
            .push(std::mem::replace(&mut self.current, next));
        self.current.clone()
    }

    /// The redundancy the group was configured with (1 + initial backups).
    pub fn configured_redundancy(&self) -> usize {
        self.configured_redundancy
    }

    /// Whether failures have eroded the group below its configured
    /// redundancy. In particular a view at `redundancy() == 1` — primary
    /// alive, zero backups — is degraded: the group still serves, but the
    /// next primary failure is unmaskable ([`ViewError::NoSuccessor`]).
    pub fn is_degraded(&self) -> bool {
        self.current.redundancy() < self.configured_redundancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> ViewManager {
        ViewManager::new(
            NodeId::new(0),
            vec![NodeId::new(1), NodeId::new(2)],
            VirtualInstant::EPOCH,
        )
    }

    #[test]
    fn primary_failure_promotes_senior_backup() {
        let mut m = manager();
        let v = m
            .fail(NodeId::new(0), VirtualInstant::from_picos(5))
            .unwrap();
        assert_eq!(v.primary(), NodeId::new(1));
        assert_eq!(v.backups(), &[NodeId::new(2)]);
        assert_eq!(v.epoch(), 2);
        assert_eq!(m.history().len(), 1);
    }

    #[test]
    fn backup_failure_keeps_primary() {
        let mut m = manager();
        let v = m
            .fail(NodeId::new(2), VirtualInstant::from_picos(5))
            .unwrap();
        assert_eq!(v.primary(), NodeId::new(0));
        assert_eq!(v.backups(), &[NodeId::new(1)]);
    }

    #[test]
    fn cascading_failures_exhaust_successors() {
        let mut m = manager();
        m.fail(NodeId::new(0), VirtualInstant::from_picos(1))
            .unwrap();
        m.fail(NodeId::new(1), VirtualInstant::from_picos(2))
            .unwrap();
        let err = m
            .fail(NodeId::new(2), VirtualInstant::from_picos(3))
            .unwrap_err();
        assert_eq!(err, ViewError::NoSuccessor);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut m = manager();
        let err = m
            .fail(NodeId::new(9), VirtualInstant::from_picos(1))
            .unwrap_err();
        assert!(matches!(err, ViewError::NotAMember { .. }));
    }

    #[test]
    fn rejoin_after_failure() {
        let mut m = manager();
        m.fail(NodeId::new(0), VirtualInstant::from_picos(1))
            .unwrap();
        let v = m.join(NodeId::new(0), VirtualInstant::from_picos(9));
        assert_eq!(v.primary(), NodeId::new(1));
        assert_eq!(v.backups(), &[NodeId::new(2), NodeId::new(0)]);
        assert_eq!(v.epoch(), 3);
    }

    #[test]
    fn duplicate_join_is_a_no_op() {
        let mut m = manager();
        let before = m.current().clone();
        // node1 is already a backup: the join must not install a view.
        let v = m.join(NodeId::new(1), VirtualInstant::from_picos(7));
        assert_eq!(v, before);
        assert_eq!(m.current(), &before);
        assert!(m.history().is_empty());
        // The primary re-joining is equally a no-op.
        let v = m.join(NodeId::new(0), VirtualInstant::from_picos(8));
        assert_eq!(v.epoch(), 1);
        assert!(m.history().is_empty());
    }

    #[test]
    fn redundancy_tracks_live_copies() {
        let mut m = manager();
        assert_eq!(m.current().redundancy(), 3);
        assert_eq!(m.configured_redundancy(), 3);
        assert!(!m.is_degraded());
        m.fail(NodeId::new(2), VirtualInstant::from_picos(1))
            .unwrap();
        assert_eq!(m.current().redundancy(), 2);
        assert!(m.is_degraded());
        m.fail(NodeId::new(1), VirtualInstant::from_picos(2))
            .unwrap();
        // Last backup gone: the view itself must say RF degraded to 1.
        assert_eq!(m.current().redundancy(), 1);
        assert!(m.is_degraded());
        assert_eq!(m.current().role_of(NodeId::new(0)), Some(Role::Primary));
        // Rejoin restores the configured redundancy.
        m.join(NodeId::new(1), VirtualInstant::from_picos(3));
        m.join(NodeId::new(2), VirtualInstant::from_picos(4));
        assert_eq!(m.current().redundancy(), 3);
        assert!(!m.is_degraded());
    }

    #[test]
    fn roles_are_reported() {
        let m = manager();
        assert_eq!(m.current().role_of(NodeId::new(0)), Some(Role::Primary));
        assert_eq!(m.current().role_of(NodeId::new(1)), Some(Role::Backup));
        assert_eq!(m.current().role_of(NodeId::new(7)), None);
    }
}
