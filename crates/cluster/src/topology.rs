//! N-node cluster topology and replication-strategy selection.
//!
//! The paper evaluates a two-node primary-backup pair; this module names
//! the generalization: a [`Topology`] is a replication factor (RF — the
//! number of nodes holding a full copy) plus a [`ReplicationStrategy`]
//! describing how writes reach the replicas. Three strategies are
//! modeled, following the taxonomy in the related quorum-consensus and
//! partial-replication work (see PAPERS.md):
//!
//! * **Primary-backup fan-out** — the paper's scheme: one primary doubles
//!   every write to all RF−1 backups over the Memory Channel. RF=2 is
//!   exactly the paper's pair and stays bit-identical to the original
//!   two-node code path.
//! * **Chain replication** — the head applies writes and forwards them
//!   down a chain; the tail's copy is the most conservative and serves
//!   reads. Link traffic is serialized hop by hop.
//! * **Quorum consensus** — writes wait for acknowledgements from W
//!   replicas and reads consult R, with R + W > RF so any read quorum
//!   intersects any write quorum.
//!
//! The actual data movement lives in `dsnrep-repl`'s `ReplicaSet`; this
//! module only validates shapes and derives the membership view, so it
//! stays dependency-free (simcore only) and usable from `faultsim`.

use core::fmt;
use std::error::Error;

use dsnrep_simcore::VirtualInstant;

use crate::membership::{NodeId, ViewManager};

/// How writes propagate to the replicas of a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplicationStrategy {
    /// One primary fans every write out to all RF−1 backups (the paper's
    /// scheme; RF=2 is the classic pair).
    PrimaryBackup,
    /// Writes enter at the head and propagate down the chain; the tail
    /// acknowledges and serves reads.
    Chain,
    /// Writes wait for `write` acknowledgements and reads consult `read`
    /// replicas, with `read + write > rf`.
    Quorum {
        /// Read quorum size R.
        read: u8,
        /// Write quorum size W.
        write: u8,
    },
}

impl fmt::Display for ReplicationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationStrategy::PrimaryBackup => f.write_str("primary-backup"),
            ReplicationStrategy::Chain => f.write_str("chain"),
            ReplicationStrategy::Quorum { read, write } => {
                write!(f, "quorum(r={read},w={write})")
            }
        }
    }
}

/// A validated cluster shape: replication factor plus strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    rf: u8,
    strategy: ReplicationStrategy,
}

/// Errors from [`Topology`] construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// RF must be at least 2 (one primary, one replica).
    ReplicationFactorTooSmall {
        /// The rejected RF.
        rf: u8,
    },
    /// A quorum size of zero, or larger than RF, can never be assembled.
    QuorumOutOfRange {
        /// The offending quorum size.
        size: u8,
        /// The replication factor it was checked against.
        rf: u8,
    },
    /// R + W must exceed RF so read and write quorums always intersect.
    QuorumsDoNotIntersect {
        /// Read quorum size.
        read: u8,
        /// Write quorum size.
        write: u8,
        /// The replication factor.
        rf: u8,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ReplicationFactorTooSmall { rf } => {
                write!(f, "replication factor {rf} is below the minimum of 2")
            }
            TopologyError::QuorumOutOfRange { size, rf } => {
                write!(f, "quorum size {size} is outside 1..={rf}")
            }
            TopologyError::QuorumsDoNotIntersect { read, write, rf } => {
                write!(
                    f,
                    "read quorum {read} + write quorum {write} must exceed rf {rf}"
                )
            }
        }
    }
}

impl Error for TopologyError {}

impl Topology {
    /// Builds a validated topology.
    ///
    /// # Errors
    ///
    /// See [`TopologyError`]: RF < 2, a quorum size outside `1..=rf`, or
    /// non-intersecting quorums (R + W ≤ RF) are rejected.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsnrep_cluster::{ReplicationStrategy, Topology};
    ///
    /// let t = Topology::new(3, ReplicationStrategy::Chain)?;
    /// assert_eq!(t.rf(), 3);
    /// assert!(Topology::new(3, ReplicationStrategy::Quorum { read: 1, write: 2 }).is_err());
    /// assert!(Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 2 }).is_ok());
    /// # Ok::<(), dsnrep_cluster::TopologyError>(())
    /// ```
    pub fn new(rf: u8, strategy: ReplicationStrategy) -> Result<Self, TopologyError> {
        if rf < 2 {
            return Err(TopologyError::ReplicationFactorTooSmall { rf });
        }
        if let ReplicationStrategy::Quorum { read, write } = strategy {
            for size in [read, write] {
                if size == 0 || size > rf {
                    return Err(TopologyError::QuorumOutOfRange { size, rf });
                }
            }
            if u16::from(read) + u16::from(write) <= u16::from(rf) {
                return Err(TopologyError::QuorumsDoNotIntersect { read, write, rf });
            }
        }
        Ok(Topology { rf, strategy })
    }

    /// The paper's two-node primary-backup pair.
    pub fn pair() -> Self {
        Topology {
            rf: 2,
            strategy: ReplicationStrategy::PrimaryBackup,
        }
    }

    /// The replication factor.
    pub fn rf(&self) -> u8 {
        self.rf
    }

    /// The replication strategy.
    pub fn strategy(&self) -> ReplicationStrategy {
        self.strategy
    }

    /// The node ids `0..rf`, in seniority order. Node 0 is the initial
    /// primary (or chain head); the chain tail is node `rf - 1`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rf).map(NodeId::new)
    }

    /// The node the strategy serves reads from while the group is whole:
    /// the tail for chain replication, the primary otherwise. (Quorum
    /// reads consult R nodes; node 0 coordinates them.)
    pub fn read_head(&self) -> NodeId {
        match self.strategy {
            ReplicationStrategy::Chain => NodeId::new(self.rf - 1),
            _ => NodeId::new(0),
        }
    }

    /// How many replicas a read must consult before it can complete: R
    /// for quorum replication (the R+W > RF intersection guarantee makes
    /// the freshest of those R responses current), 1 otherwise (the
    /// primary, or the chain tail, is authoritative on its own).
    pub fn read_quorum(&self) -> u8 {
        match self.strategy {
            ReplicationStrategy::Quorum { read, .. } => read,
            _ => 1,
        }
    }

    /// The membership view manager for this topology: node 0 primary,
    /// nodes `1..rf` backups in seniority order.
    pub fn view_manager(&self, at: VirtualInstant) -> ViewManager {
        let backups = (1..self.rf).map(NodeId::new).collect();
        ViewManager::new(NodeId::new(0), backups, at)
    }

    /// How many node failures the strategy masks without losing either
    /// data or (for quorum) the ability to commit: RF−1 for
    /// primary-backup and chain, RF−W for quorum (fewer live nodes than W
    /// and writes can no longer assemble a quorum).
    pub fn fault_tolerance(&self) -> u8 {
        match self.strategy {
            ReplicationStrategy::PrimaryBackup | ReplicationStrategy::Chain => self.rf - 1,
            ReplicationStrategy::Quorum { write, .. } => self.rf - write,
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rf={}", self.strategy, self.rf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_the_papers_shape() {
        let t = Topology::pair();
        assert_eq!(t.rf(), 2);
        assert_eq!(t.strategy(), ReplicationStrategy::PrimaryBackup);
        assert_eq!(t.fault_tolerance(), 1);
        assert_eq!(t.read_head(), NodeId::new(0));
    }

    #[test]
    fn rf_below_two_is_rejected() {
        for rf in [0, 1] {
            assert_eq!(
                Topology::new(rf, ReplicationStrategy::PrimaryBackup),
                Err(TopologyError::ReplicationFactorTooSmall { rf })
            );
        }
    }

    #[test]
    fn quorum_shapes_are_validated() {
        assert!(Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 2 }).is_ok());
        assert!(Topology::new(5, ReplicationStrategy::Quorum { read: 2, write: 4 }).is_ok());
        assert_eq!(
            Topology::new(3, ReplicationStrategy::Quorum { read: 0, write: 2 }),
            Err(TopologyError::QuorumOutOfRange { size: 0, rf: 3 })
        );
        assert_eq!(
            Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 4 }),
            Err(TopologyError::QuorumOutOfRange { size: 4, rf: 3 })
        );
        assert_eq!(
            Topology::new(4, ReplicationStrategy::Quorum { read: 2, write: 2 }),
            Err(TopologyError::QuorumsDoNotIntersect {
                read: 2,
                write: 2,
                rf: 4
            })
        );
    }

    #[test]
    fn read_quorum_is_r_for_quorum_and_one_otherwise() {
        assert_eq!(Topology::pair().read_quorum(), 1);
        let chain = Topology::new(4, ReplicationStrategy::Chain).unwrap();
        assert_eq!(chain.read_quorum(), 1);
        let q = Topology::new(5, ReplicationStrategy::Quorum { read: 3, write: 3 }).unwrap();
        assert_eq!(q.read_quorum(), 3);
    }

    #[test]
    fn chain_reads_from_the_tail() {
        let t = Topology::new(4, ReplicationStrategy::Chain).unwrap();
        assert_eq!(t.read_head(), NodeId::new(3));
        assert_eq!(t.fault_tolerance(), 3);
        let nodes: Vec<_> = t.nodes().collect();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0], NodeId::new(0));
    }

    #[test]
    fn view_manager_seeds_seniority_order() {
        let t = Topology::new(3, ReplicationStrategy::PrimaryBackup).unwrap();
        let m = t.view_manager(VirtualInstant::EPOCH);
        assert_eq!(m.current().primary(), NodeId::new(0));
        assert_eq!(m.current().backups(), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(m.current().redundancy(), 3);
        assert_eq!(m.configured_redundancy(), 3);
    }

    #[test]
    fn quorum_fault_tolerance_is_rf_minus_w() {
        let t = Topology::new(5, ReplicationStrategy::Quorum { read: 2, write: 4 }).unwrap();
        assert_eq!(t.fault_tolerance(), 1);
        let t = Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 2 }).unwrap();
        assert_eq!(t.fault_tolerance(), 1);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Topology::pair().to_string(), "primary-backup rf=2");
        let t = Topology::new(3, ReplicationStrategy::Quorum { read: 2, write: 2 }).unwrap();
        assert_eq!(t.to_string(), "quorum(r=2,w=2) rf=3");
        let t = Topology::new(3, ReplicationStrategy::Chain).unwrap();
        assert_eq!(t.to_string(), "chain rf=3");
    }
}
