//! A lifetime-availability marathon: five generations of run → crash →
//! failover → promote → re-replicate, under 2-safe commits, ending
//! byte-identical to an uninterrupted reference execution.
//!
//! This is the end-to-end claim of the paper's title — fault tolerance
//! *and* availability — exercised across repeated failures rather than a
//! single one.

use dsnrep_core::{audit, build_engine, Durability, EngineConfig, Machine, VersionTag};
use dsnrep_repl::PassiveCluster;
use dsnrep_simcore::{CostModel, MIB};
use dsnrep_workloads::{DebitCredit, TxCtx, Workload};

const DB: u64 = MIB;
const TXNS_PER_GENERATION: u64 = 150;
const GENERATIONS: u64 = 5;

#[test]
fn five_generations_of_failover_lose_nothing_under_two_safe() {
    let config = EngineConfig::for_db(DB);
    // One workload object lives across all generations: its RNG stream is
    // the "application", surviving every failover.
    let mut cluster =
        PassiveCluster::new(CostModel::alpha_21164a(), VersionTag::ImprovedLog, &config);
    cluster.set_durability(Durability::TwoSafe);
    let mut workload = DebitCredit::new(cluster.engine().db_region(), 0xCAFE);

    for generation in 1..=GENERATIONS {
        cluster.run(&mut workload, TXNS_PER_GENERATION);
        let failover = cluster.crash_primary();
        assert_eq!(
            failover.report.committed_seq,
            generation * TXNS_PER_GENERATION,
            "generation {generation}: 2-safe must lose nothing"
        );
        // The promoted node's arena passes a full consistency audit...
        audit(VersionTag::ImprovedLog, &failover.machine.arena().borrow())
            .unwrap_or_else(|e| panic!("generation {generation}: {e}"));
        // ...and becomes the primary of a fresh cluster: its recovered
        // arena seeds the next generation (re-replication to a new backup).
        let recovered = failover.machine.arena().borrow().clone();
        let mut next =
            PassiveCluster::new(CostModel::alpha_21164a(), VersionTag::ImprovedLog, &config);
        next.set_durability(Durability::TwoSafe);
        *next.machine_mut().arena().borrow_mut() = recovered;
        next.resync_backup();
        cluster = next;
    }

    // Reference: the same workload stream, uninterrupted, on one machine.
    let arena = dsnrep_core::shared_arena(dsnrep_core::arena_len(VersionTag::ImprovedLog, &config));
    let mut m = Machine::standalone(CostModel::alpha_21164a(), arena);
    let mut engine = build_engine(VersionTag::ImprovedLog, &mut m, &config);
    let mut reference_workload = DebitCredit::new(engine.db_region(), 0xCAFE);
    for _ in 0..GENERATIONS * TXNS_PER_GENERATION {
        let mut ctx = TxCtx::new(&mut m, engine.as_mut());
        reference_workload
            .run_txn(&mut ctx)
            .expect("reference transaction");
    }

    let db = engine.db_region();
    let reference = m.arena().borrow().read_vec(db.start(), db.len() as usize);
    let survivor = cluster
        .machine()
        .arena()
        .borrow()
        .read_vec(db.start(), db.len() as usize);
    assert_eq!(
        reference, survivor,
        "after {GENERATIONS} failovers the surviving database must equal \
         the uninterrupted reference"
    );
}
