//! The paper's qualitative results as assertions.
//!
//! These are the headline *shapes* of the evaluation — who wins, in which
//! configuration, and why — checked at a reduced run scale. The full
//! quantitative comparison lives in `dsnrep-bench` (`cargo bench`, or the
//! `reproduce` binary) and in `EXPERIMENTS.md`.

use dsnrep::core::VersionTag;
use dsnrep::workloads::WorkloadKind;
use dsnrep_bench::experiments::{self, kind_index, RunScale};

fn scale() -> RunScale {
    RunScale {
        debit_credit: 4_000,
        order_entry: 2_000,
        smp_per_stream: 800,
    }
}

const V0: usize = 0;
const V1: usize = 1;
const V2: usize = 2;
const V3: usize = 3;

#[test]
fn figure1_bandwidth_grows_with_packet_size() {
    let sweep = experiments::figure1();
    assert!(sweep
        .windows(2)
        .all(|w| w[0].mib_per_sec < w[1].mib_per_sec));
    let bw32 = sweep.last().expect("four points").mib_per_sec;
    assert!(
        (70.0..90.0).contains(&bw32),
        "32-byte bandwidth {bw32} MB/s"
    );
}

#[test]
fn table1_straightforward_port_collapses_throughput() {
    // "Throughput drops by a factor of 5.6 for Debit-Credit and by a
    // factor of 2.7 for Order-Entry" — we require a large drop with
    // Debit-Credit hit harder.
    let t = experiments::table1(scale());
    let drop_dc = t[0][0] / t[0][1];
    let drop_oe = t[1][0] / t[1][1];
    assert!(drop_dc > 2.5, "Debit-Credit drop {drop_dc:.1}x");
    assert!(drop_oe > 1.8, "Order-Entry drop {drop_oe:.1}x");
    assert!(drop_dc > drop_oe, "Debit-Credit must be hit harder");
}

#[test]
fn table2_metadata_dominates_the_straightforward_traffic() {
    // "A very large percentage of the data communicated is meta-data."
    let t = experiments::table2(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        assert!(
            t[k].meta > t[k].modified + t[k].undo,
            "{kind}: metadata {:.0} MB should dominate {:.0}+{:.0} MB",
            t[k].meta,
            t[k].modified,
            t[k].undo
        );
    }
}

#[test]
fn table3_standalone_ordering() {
    // V3 > V1 > V2 > V0 for both benchmarks (Table 3), with every
    // restructured version beating Vista.
    let t = experiments::table3(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        assert!(
            t[k][V3] > t[k][V1],
            "{kind}: V3 {} <= V1 {}",
            t[k][V3],
            t[k][V1]
        );
        assert!(
            t[k][V1] > t[k][V2],
            "{kind}: V1 {} <= V2 {}",
            t[k][V1],
            t[k][V2]
        );
        assert!(
            t[k][V2] > t[k][V0],
            "{kind}: V2 {} <= V0 {}",
            t[k][V2],
            t[k][V0]
        );
    }
}

#[test]
fn table4_passive_ordering_flips_the_mirrors_and_crowns_logging() {
    // Primary-backup: V3 wins by a substantial margin, V2 beats V1
    // (reversed from standalone), and everything beats V0.
    let t = experiments::table4_and_5(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        let tps = |v: usize| t[k][v].0;
        assert!(tps(V3) > 1.2 * tps(V2), "{kind}: V3 must win clearly");
        assert!(
            tps(V2) > tps(V1),
            "{kind}: diffing must beat copying under replication"
        );
        assert!(
            tps(V1) > 1.5 * tps(V0),
            "{kind}: restructuring must pay off"
        );
    }
}

#[test]
fn table5_logging_ships_more_bytes_but_wins_anyway() {
    // The paper's central point: Version 3 outperforms Version 2 despite
    // communicating more data.
    let t = experiments::table4_and_5(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        let (v3_tps, v3_traffic) = t[k][V3];
        let (v2_tps, v2_traffic) = t[k][V2];
        assert!(
            v3_traffic.total() > v2_traffic.total(),
            "{kind}: V3 ships more"
        );
        assert!(v3_tps > v2_tps, "{kind}: ...and still wins");
    }
}

#[test]
fn table6_active_beats_the_best_passive() {
    let t = experiments::table6_and_7(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        let (passive, _) = t[k][0];
        let (active, _) = t[k][1];
        assert!(
            active > passive,
            "{kind}: active {active:.0} must beat passive {passive:.0}"
        );
    }
}

#[test]
fn table7_active_ships_no_undo_and_less_total() {
    let t = experiments::table6_and_7(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        let passive = t[k][0].1;
        let active = t[k][1].1;
        assert_eq!(active.undo, 0.0, "{kind}: active ships no undo/mirror data");
        assert!(
            active.total() < passive.total() / 1.5,
            "{kind}: active total {:.0} MB must be well below passive {:.0} MB",
            active.total(),
            passive.total()
        );
    }
}

#[test]
fn table8_graceful_degradation_with_database_size() {
    let t = experiments::table8(scale());
    for (k, kind) in WorkloadKind::ALL.iter().enumerate() {
        assert!(
            t[k][0] > t[k][1] && t[k][1] > t[k][2],
            "{kind}: must degrade: {:?}",
            t[k]
        );
        let drop = (t[k][0] - t[k][2]) / t[k][0];
        assert!(
            drop < 0.35,
            "{kind}: degradation must stay graceful, got {:.0}%",
            drop * 100.0
        );
    }
}

#[test]
fn figures_2_and_3_only_frugal_schemes_scale() {
    for kind in WorkloadKind::ALL {
        let fig = experiments::smp_figure(kind, scale());
        let (active, v3, v2, v1) = (fig[0], fig[1], fig[2], fig[3]);
        // Active dominates at every processor count...
        for p in 0..4 {
            assert!(
                active[p] >= v3[p],
                "{kind}: active under V3 at {} procs",
                p + 1
            );
            assert!(
                v3[p] >= v2[p] * 0.95,
                "{kind}: V3 under V2 at {} procs",
                p + 1
            );
        }
        // ...and scales the furthest, while mirroring-by-copy flatlines.
        let scaling = |s: [f64; 4]| s[3] / s[0];
        assert!(
            scaling(active) > scaling(v1) + 0.3,
            "{kind}: active must out-scale V1"
        );
        assert!(
            v1[3] < v1[1] * 1.25,
            "{kind}: mirror-by-copy must be bandwidth-limited by 2 processors"
        );
    }
}

#[test]
fn version_labels_line_up_with_paper_tables() {
    for (i, v) in VersionTag::ALL.iter().enumerate() {
        assert_eq!(v.paper_label(), dsnrep_bench::paper::VERSION_LABELS[i]);
    }
    assert_eq!(kind_index(WorkloadKind::DebitCredit), 0);
    assert_eq!(kind_index(WorkloadKind::OrderEntry), 1);
}
