//! End-to-end availability: heartbeat detection + view change + engine
//! takeover, across the cluster and replication crates.

use dsnrep::cluster::{takeover_timeline, HeartbeatConfig, NodeId, Role, ViewManager};
use dsnrep::core::{EngineConfig, VersionTag};
use dsnrep::repl::{ActiveCluster, PassiveCluster};
use dsnrep::simcore::{CostModel, VirtualDuration, VirtualInstant, MIB};
use dsnrep::workloads::{TxCtx, WorkloadKind};

#[test]
fn detected_failover_ends_with_a_serving_backup() {
    for version in VersionTag::ALL {
        let config = EngineConfig::for_db(MIB);
        let mut cluster = PassiveCluster::new(CostModel::alpha_21164a(), version, &config);
        let mut workload = WorkloadKind::DebitCredit.build(cluster.engine().db_region(), 9);
        cluster.run(workload.as_mut(), 500);

        // The failure detector on the backup notices the silence.
        let crash_at = cluster.machine().now();
        let mut views =
            ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH);
        let timeline = takeover_timeline(
            HeartbeatConfig::default(),
            CostModel::alpha_21164a().link_latency,
            crash_at,
            VirtualDuration::from_millis(1),
            &mut views,
        )
        .expect("two-node cluster");
        assert!(timeline.detected_at > crash_at, "{version}");
        assert!(
            timeline.outage() < VirtualDuration::from_millis(10),
            "{version}: outage {} too long",
            timeline.outage()
        );
        assert_eq!(views.current().primary(), NodeId::new(1));
        assert_eq!(views.current().role_of(NodeId::new(0)), None);

        // The replication layer performs the takeover the view demands.
        let mut failover = cluster.crash_primary();
        assert!(failover.report.committed_seq <= 500, "{version}");
        for _ in 0..100 {
            let mut ctx = TxCtx::new(&mut failover.machine, failover.engine.as_mut());
            workload
                .run_txn(&mut ctx)
                .unwrap_or_else(|e| panic!("{version}: {e}"));
        }
        assert_eq!(
            failover.engine.committed_seq(&mut failover.machine),
            failover.report.committed_seq + 100,
            "{version}"
        );
    }
}

#[test]
fn active_cluster_failover_then_rejoin_view() {
    let config = EngineConfig::for_db(MIB);
    let mut cluster = ActiveCluster::new(CostModel::alpha_21164a(), &config);
    let mut workload = WorkloadKind::DebitCredit.build(cluster.db_region(), 17);
    cluster.run(workload.as_mut(), 800);
    let crash_at = cluster.machine().now();

    let mut views = ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH);
    let timeline = takeover_timeline(
        HeartbeatConfig::default(),
        CostModel::alpha_21164a().link_latency,
        crash_at,
        VirtualDuration::from_micros(100), // active recovery applies only whole txns
        &mut views,
    )
    .expect("two-node cluster");
    let failover = cluster.crash_primary().expect("backup formats");
    assert!(failover.report.committed_seq >= 800 - 32);

    // The old primary reboots, resynchronizes, and rejoins as a backup.
    let rejoin_at = timeline.serving_at + VirtualDuration::from_secs(1);
    let view = views.join(NodeId::new(0), rejoin_at);
    assert_eq!(view.primary(), NodeId::new(1));
    assert_eq!(view.role_of(NodeId::new(0)), Some(Role::Backup));
    assert_eq!(view.epoch(), 3);
}

#[test]
fn backup_arena_tracks_primary_for_replicated_regions() {
    // After a graceful quiesce, every write-through region must be
    // byte-identical on the backup (the mapping invariant the paper's
    // failover rests on).
    for version in VersionTag::ALL {
        let config = EngineConfig::for_db(MIB);
        let mut cluster = PassiveCluster::new(CostModel::alpha_21164a(), version, &config);
        let mut workload = WorkloadKind::DebitCredit.build(cluster.engine().db_region(), 5);
        cluster.run(workload.as_mut(), 400);
        cluster.quiesce();
        let regions = cluster.engine().replicated_regions();
        let primary = cluster.machine().arena().borrow().clone();
        let backup = cluster.backup_arena().borrow().clone();
        for region in regions {
            assert_eq!(
                primary.region_vec(region),
                backup.region_vec(region),
                "{version}: replicated region {region} diverged"
            );
        }
    }
}
