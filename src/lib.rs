//! # dsnrep — data replication strategies on commodity clusters
//!
//! A comprehensive Rust reproduction of *"Data Replication Strategies for
//! Fault Tolerance and Availability on Commodity Clusters"* (Amza, Cox,
//! Zwaenepoel — DSN 2000): a Vista-style recoverable-memory transaction
//! system, four engine structures (Vista, mirror-by-copy, mirror-by-diff,
//! improved log), passive and active primary-backup replication over a
//! modelled Memory Channel SAN, and the full evaluation harness.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `dsnrep-simcore` | virtual time, cache model, cost model |
//! | [`rio`] | `dsnrep-rio` | recoverable-memory arena + heap |
//! | [`mcsim`] | `dsnrep-mcsim` | Memory Channel model |
//! | [`core`] | `dsnrep-core` | the four transaction engines |
//! | [`repl`] | `dsnrep-repl` | passive/active clusters, SMP driver |
//! | [`cluster`] | `dsnrep-cluster` | failure detection + membership |
//! | [`workloads`] | `dsnrep-workloads` | Debit-Credit and Order-Entry |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `dsnrep-bench` crate for the paper's tables and figures.

#![forbid(unsafe_code)]

pub use dsnrep_cluster as cluster;
pub use dsnrep_core as core;
pub use dsnrep_mcsim as mcsim;
pub use dsnrep_repl as repl;
pub use dsnrep_rio as rio;
pub use dsnrep_simcore as simcore;
pub use dsnrep_workloads as workloads;
