//! A banking service on an active-backup cluster, with a monitored
//! failover: the Debit-Credit workload (the paper's TPC-B variant) runs on
//! the primary while the backup applies the redo ring; a heartbeat detector
//! notices the crash and the takeover timeline is reported.
//!
//! ```text
//! cargo run --release --example banking
//! ```

use dsnrep::cluster::{takeover_timeline, HeartbeatConfig, NodeId, ViewManager};
use dsnrep::core::EngineConfig;
use dsnrep::repl::ActiveCluster;
use dsnrep::simcore::{CostModel, TrafficClass, VirtualDuration, VirtualInstant, MIB};
use dsnrep::workloads::{DebitCredit, Workload};

fn main() {
    let costs = CostModel::alpha_21164a();
    let config = EngineConfig::for_db(10 * MIB);
    let mut cluster = ActiveCluster::new(costs.clone(), &config);
    let mut workload = DebitCredit::new(cluster.db_region(), 2026);
    println!(
        "banking database: {} accounts across {} branches",
        workload.accounts(),
        workload.branches()
    );

    // Serve the morning's traffic.
    let report = cluster.run(&mut workload, 50_000);
    println!("primary: {report}");
    let traffic = cluster.traffic();
    println!(
        "redo shipped: {:.2} MB data + {:.2} MB headers/cursors, mean packet {:.1} B",
        traffic.mib(TrafficClass::Modified),
        traffic.mib(TrafficClass::Meta),
        traffic.mean_packet_size()
    );
    println!(
        "backup has applied {} transactions",
        cluster.backup_applied_seq()
    );

    // The primary dies mid-stream. The cluster layer computes the outage;
    // the replication layer performs the takeover.
    let crash_at = cluster.machine().now();
    let mut views = ViewManager::new(NodeId::new(0), vec![NodeId::new(1)], VirtualInstant::EPOCH);
    let failover = cluster.crash_primary().expect("backup arena is formatted");
    let lost = 50_000 - failover.report.committed_seq;
    // Engine recovery on the backup is nearly instant for the active
    // scheme (whole transactions only); budget a round millisecond for the
    // service restart on top of detection.
    let timeline = takeover_timeline(
        HeartbeatConfig::default(),
        costs.link_latency,
        crash_at,
        VirtualDuration::from_millis(1),
        &mut views,
    )
    .expect("a backup exists");
    println!(
        "crash at {}: detected at {}, serving again at {} (outage {})",
        timeline.crashed_at,
        timeline.detected_at,
        timeline.serving_at,
        timeline.outage()
    );
    println!(
        "1-safe window: {} committed transaction(s) lost; backup state is a \
         clean transaction boundary at seq {}",
        lost, failover.report.committed_seq
    );
    println!("new primary: {}", views.current().primary());

    // And the promoted node keeps the books open.
    let mut machine = failover.machine;
    let mut engine = failover.engine;
    for _ in 0..1_000 {
        let mut ctx = dsnrep::workloads::TxCtx::new(&mut machine, engine.as_mut());
        workload
            .run_txn(&mut ctx)
            .expect("post-failover transaction");
    }
    println!("promoted backup served 1000 transactions; books are open");
}
