//! A wholesale-supplier service (Order-Entry, the paper's TPC-C variant)
//! comparing all four engine versions under passive replication — the
//! paper's §5 experiment as a program.
//!
//! ```text
//! cargo run --release --example wholesale
//! ```

use dsnrep::core::{EngineConfig, VersionTag};
use dsnrep::repl::PassiveCluster;
use dsnrep::simcore::{CostModel, TrafficClass, MIB};
use dsnrep::workloads::OrderEntry;

fn main() {
    let txns = 20_000u64;
    let config = EngineConfig::for_db(50 * MIB);
    println!(
        "Order-Entry over a 50 MB database, {txns} transactions per version, \
         passive backup:\n"
    );
    println!(
        "{:28} {:>9} {:>11} {:>11} {:>11} {:>9}",
        "version", "TPS", "modified", "undo/mirror", "meta", "mean pkt"
    );
    let mut best: Option<(VersionTag, f64)> = None;
    for version in VersionTag::ALL {
        let mut cluster = PassiveCluster::new(CostModel::alpha_21164a(), version, &config);
        let mut workload = OrderEntry::new(cluster.engine().db_region(), 11);
        let report = cluster.run(&mut workload, txns);
        let t = cluster.traffic();
        println!(
            "{:28} {:>9.0} {:>9.2}MB {:>9.2}MB {:>9.2}MB {:>8.1}B",
            version.paper_label(),
            report.tps(),
            t.mib(TrafficClass::Modified),
            t.mib(TrafficClass::Undo),
            t.mib(TrafficClass::Meta),
            t.mean_packet_size()
        );
        if best.is_none_or(|(_, tps)| report.tps() > tps) {
            best = Some((version, report.tps()));
        }

        // Every version fails over to a usable backup.
        let failover = cluster.crash_primary();
        assert!(failover.report.committed_seq <= txns);
    }
    let (winner, tps) = best.expect("four versions ran");
    println!(
        "\nwinner: {} at {:.0} TPS — logging beats mirroring even though it \
         ships more bytes, because its sequential log rides full-size SAN \
         packets (the paper's central result).",
        winner.paper_label(),
        tps
    );
}
