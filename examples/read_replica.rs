//! Read offloading to the active backup.
//!
//! The paper's introduction asks "whether the backup can or should be used
//! to execute transactions itself, in a more full-fledged cluster". An
//! active backup applies whole committed transactions, so its database is
//! always a consistent — if slightly stale — snapshot: perfect for
//! dashboards and reports that must not touch the primary.
//!
//! ```text
//! cargo run --release --example read_replica
//! ```

use dsnrep::core::EngineConfig;
use dsnrep::repl::ActiveCluster;
use dsnrep::simcore::{CostModel, MIB};
use dsnrep::workloads::DebitCredit;

fn main() {
    let config = EngineConfig::for_db(4 * MIB);
    let mut cluster = ActiveCluster::new(CostModel::alpha_21164a(), &config);
    let workload_region = cluster.db_region();
    let mut workload = DebitCredit::new(workload_region, 5);
    let branches = workload.branches();

    // The primary serves writes; every few thousand transactions the
    // "dashboard" sums all branch balances from the BACKUP's copy.
    for round in 1..=5u64 {
        cluster.run(&mut workload, 5_000);
        let applied = cluster.backup_applied_seq();

        let mut total = 0i64;
        for b in 0..branches {
            let mut rec = [0u8; 4];
            cluster.backup_read(workload_region.start() + b * 16, &mut rec);
            total += i64::from(i32::from_le_bytes(rec));
        }
        println!(
            "round {round}: primary at {} txns, dashboard snapshot at {} txns, \
             branch total {total}",
            round * 5_000,
            applied
        );
        // The snapshot is a transaction boundary: the staleness is bounded
        // by the in-flight window.
        assert!(applied <= round * 5_000);
        assert!(round * 5_000 - applied < 16, "snapshot too stale");
    }
    println!("dashboard never touched the primary; backup reads are free");
}
