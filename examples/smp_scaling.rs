//! SMP scaling (the paper's §8): run 1-4 transaction streams on a
//! multiprocessor primary, all sharing one SAN link, and watch which
//! replication schemes scale.
//!
//! ```text
//! cargo run --release --example smp_scaling [txns_per_stream]
//! ```

use dsnrep::core::{EngineConfig, VersionTag};
use dsnrep::repl::{Scheme, SmpExperiment};
use dsnrep::simcore::{CostModel, MIB};
use dsnrep::workloads::WorkloadKind;

fn main() {
    let txns: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5_000);
    let schemes = [
        Scheme::Active,
        Scheme::Passive(VersionTag::ImprovedLog),
        Scheme::Passive(VersionTag::MirrorDiff),
        Scheme::Passive(VersionTag::MirrorCopy),
    ];
    for kind in WorkloadKind::ALL {
        println!("== {kind}: aggregate TPS by processor count ==");
        println!(
            "{:34} {:>9} {:>9} {:>9} {:>9}  scaling",
            "scheme", "1", "2", "3", "4"
        );
        for scheme in schemes {
            let mut tps = [0.0f64; 4];
            for procs in 1..=4usize {
                // 10 MB database per stream, as in the paper.
                let config = EngineConfig::for_db(10 * MIB);
                let mut exp =
                    SmpExperiment::new(CostModel::alpha_21164a(), scheme, kind, &config, procs);
                tps[procs - 1] = exp.run(txns).aggregate_tps();
            }
            println!(
                "{:34} {:>9.0} {:>9.0} {:>9.0} {:>9.0}  {:.2}x",
                scheme.to_string(),
                tps[0],
                tps[1],
                tps[2],
                tps[3],
                tps[3] / tps[0]
            );
        }
        println!();
    }
    println!(
        "Only the bandwidth-frugal, well-coalescing schemes scale: the shared \
         link saturates first for the small-packet mirroring protocols \
         (paper Figures 2 and 3)."
    );
}
