//! Quickstart: a transactional store that survives crashes, then gets a
//! backup, then fails over.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsnrep::core::{Engine, EngineConfig, ImprovedLogEngine, Machine, VersionTag};
use dsnrep::repl::PassiveCluster;
use dsnrep::simcore::{CostModel, MIB};
use dsnrep::workloads::DebitCredit;

fn main() {
    // ---- 1. A standalone recoverable-memory transaction store ----------
    let config = EngineConfig::for_db(MIB);
    let arena = dsnrep::core::shared_arena(ImprovedLogEngine::arena_len(&config));
    let mut machine = Machine::standalone(CostModel::alpha_21164a(), arena);
    let mut engine = ImprovedLogEngine::format(&mut machine, &config);
    let account = engine.db_region().start();

    // Deposit 100, transactionally.
    engine.begin(&mut machine).expect("engine is idle");
    engine
        .set_range(&mut machine, account, 8)
        .expect("in database");
    engine
        .write(&mut machine, account, &100u64.to_le_bytes())
        .expect("covered");
    engine.commit(&mut machine).expect("commit");

    // Start a withdrawal... and crash in the middle of it.
    engine.begin(&mut machine).expect("engine is idle");
    engine
        .set_range(&mut machine, account, 8)
        .expect("in database");
    engine
        .write(&mut machine, account, &0u64.to_le_bytes())
        .expect("covered");
    machine.crash(); // volatile state gone; recoverable memory survives

    let mut engine = ImprovedLogEngine::attach(&mut machine).expect("formatted arena");
    let report = engine.recover(&mut machine);
    let mut balance = [0u8; 8];
    engine.read(&mut machine, account, &mut balance);
    println!(
        "after crash + recovery: balance = {} (rolled back: {})",
        u64::from_le_bytes(balance),
        report.rolled_back
    );
    assert_eq!(u64::from_le_bytes(balance), 100);

    // ---- 2. The same engine, replicated to a backup over the SAN --------
    let mut cluster =
        PassiveCluster::new(CostModel::alpha_21164a(), VersionTag::ImprovedLog, &config);
    let mut workload = DebitCredit::new(cluster.engine().db_region(), 7);
    let report = cluster.run(&mut workload, 1_000);
    println!("replicated run: {report}");
    println!("shipped to the backup: {}", cluster.traffic());

    // ---- 3. Kill the primary; the backup takes over ---------------------
    let mut failover = cluster.crash_primary();
    println!(
        "failover: backup recovered {} committed transactions",
        failover.report.committed_seq
    );
    // The promoted backup keeps serving.
    for _ in 0..100 {
        let mut ctx =
            dsnrep::workloads::TxCtx::new(&mut failover.machine, failover.engine.as_mut());
        use dsnrep::workloads::Workload;
        workload
            .run_txn(&mut ctx)
            .expect("post-failover transaction");
    }
    println!(
        "backup served 100 more transactions (seq now {})",
        failover.engine.committed_seq(&mut failover.machine)
    );
}
